// Tests for the live front-end (src/frontend): trace sources, the Batcher's
// budget/back-pressure state machine, the streaming ingest pipeline, and the
// admission-controlled query service.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "frontend/frontend.h"
#include "mind/mind_net.h"
#include "traffic/topology.h"
#include "traffic/trace_io.h"
#include "util/digest.h"
#include "util/rng.h"

namespace mind {
namespace frontend {
namespace {

// ------------------------------------------------------------ trace sources

FlowRecord MakeFlow(double time_sec, int router, uint32_t src_ip,
                    uint32_t dst_ip, uint64_t bytes, uint32_t packets = 40) {
  FlowRecord f;
  f.src_ip = src_ip;
  f.dst_ip = dst_ip;
  f.src_port = 1234;
  f.dst_port = 80;
  f.bytes = bytes;
  f.packets = packets;
  f.time_sec = time_sec;
  f.router = router;
  return f;
}

TEST(TraceSourceTest, VectorYieldsInOrderThenEnds) {
  std::vector<FlowRecord> flows = {MakeFlow(1.0, 0, 1, 2, 100),
                                   MakeFlow(2.0, 1, 3, 4, 200)};
  VectorTraceSource src(flows);
  FlowRecord f;
  auto more = src.Next(&f);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(f.time_sec, 1.0);
  more = src.Next(&f);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(f.time_sec, 2.0);
  more = src.Next(&f);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
  // Stays exhausted.
  more = src.Next(&f);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
}

TEST(TraceSourceTest, BinaryRoundTripsAndErrorsAreFinal) {
  std::vector<FlowRecord> flows = {MakeFlow(1.5, 0, 10, 20, 100),
                                   MakeFlow(2.5, 1, 30, 40, 200)};
  std::ostringstream out;
  ASSERT_TRUE(WriteFlowsBinary(out, flows).ok());

  {
    std::istringstream in(out.str());
    BinaryTraceSource src(&in);
    FlowRecord f;
    for (const auto& want : flows) {
      auto more = src.Next(&f);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      ASSERT_TRUE(more.value());
      EXPECT_EQ(f.time_sec, want.time_sec);
      EXPECT_EQ(f.router, want.router);
    }
    auto more = src.Next(&f);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(more.value());
  }

  {
    // Truncate mid-record: Next surfaces the reader's precise error once,
    // then the source stays (cleanly) exhausted.
    std::string bytes = out.str();
    bytes.resize(bytes.size() - 10);
    std::istringstream in(bytes);
    BinaryTraceSource src(&in);
    FlowRecord f;
    auto more = src.Next(&f);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(more.value());
    more = src.Next(&f);
    ASSERT_FALSE(more.ok());
    EXPECT_NE(more.status().message().find("truncated at record 1 of 2"),
              std::string::npos)
        << more.status().ToString();
    more = src.Next(&f);
    ASSERT_TRUE(more.ok());
    EXPECT_FALSE(more.value());
  }
}

TEST(TraceSourceTest, GeneratorIsGloballyTimeOrdered) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 11;
  FlowGenerator gen(topo, gopts);
  GeneratorTraceSource src(&gen, /*day=*/0, 39600.0, 39690.0);
  FlowRecord f;
  double prev = 0;
  size_t n = 0;
  while (true) {
    auto more = src.Next(&f);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_GE(f.time_sec, prev) << "record " << n << " out of order";
    EXPECT_GE(f.time_sec, 39600.0);
    EXPECT_LT(f.time_sec, 39690.0);
    prev = f.time_sec;
    ++n;
  }
  EXPECT_GT(n, 100u) << "generator produced implausibly few records";
}

// ----------------------------------------------------------------- Batcher

Tuple MakeT(uint64_t seq) {
  Tuple t;
  t.point = {seq, 100 + seq, 7};  // 3 dims + 1 extra = 56 wire bytes
  t.extra = {42};
  t.origin = 0;
  t.seq = seq;
  return t;
}

TEST(BatcherTest, ClosesOnTupleBudget) {
  BatcherOptions opts;
  opts.batch_max_tuples = 4;
  opts.batch_max_bytes = 1 << 20;
  Batcher b(opts);
  for (uint64_t i = 0; i < 3; ++i) {
    Tuple t = MakeT(i);
    EXPECT_EQ(b.Push(&t, 0), Batcher::Offer::kAccepted);
    EXPECT_FALSE(b.HasReady(0));  // under budget, deadline not reached
  }
  Tuple t = MakeT(3);
  EXPECT_EQ(b.Push(&t, 0), Batcher::Offer::kAccepted);
  ASSERT_TRUE(b.HasReady(0));
  auto batch = b.TakeReady(0);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_TRUE(b.empty());
}

TEST(BatcherTest, ClosesOnByteBudgetHighWater) {
  BatcherOptions opts;
  opts.batch_max_tuples = 1000;
  opts.batch_max_bytes = 100;  // each tuple is 56 bytes
  Batcher b(opts);
  Tuple t0 = MakeT(0);
  EXPECT_EQ(b.Push(&t0, 0), Batcher::Offer::kAccepted);
  EXPECT_FALSE(b.HasReady(0));
  Tuple t1 = MakeT(1);
  EXPECT_EQ(b.Push(&t1, 0), Batcher::Offer::kAccepted);
  // 112 bytes >= 100: high-water close, the second tuple rides along.
  ASSERT_TRUE(b.HasReady(0));
  EXPECT_EQ(b.TakeReady(0).size(), 2u);
}

TEST(BatcherTest, FlushesOnDeadline) {
  BatcherOptions opts;
  opts.batch_max_tuples = 1000;
  opts.flush_deadline = FromMillis(100);
  Batcher b(opts);
  EXPECT_FALSE(b.NextDeadline().has_value());
  Tuple t = MakeT(0);
  EXPECT_EQ(b.Push(&t, FromMillis(7)), Batcher::Offer::kAccepted);
  ASSERT_TRUE(b.NextDeadline().has_value());
  EXPECT_EQ(*b.NextDeadline(), FromMillis(107));
  EXPECT_FALSE(b.HasReady(FromMillis(106)));
  EXPECT_TRUE(b.TakeReady(FromMillis(106)).empty());
  ASSERT_TRUE(b.HasReady(FromMillis(107)));
  EXPECT_EQ(b.TakeReady(FromMillis(107)).size(), 1u);
  EXPECT_FALSE(b.NextDeadline().has_value());
}

TEST(BatcherTest, DropNewestAtQueueBound) {
  BatcherOptions opts;
  opts.batch_max_tuples = 2;
  opts.queue_max_tuples = 3;
  opts.policy = OverflowPolicy::kDropNewest;
  Batcher b(opts);
  for (uint64_t i = 0; i < 3; ++i) {
    Tuple t = MakeT(i);
    EXPECT_EQ(b.Push(&t, 0), Batcher::Offer::kAccepted);
  }
  EXPECT_EQ(b.queued_tuples(), 3u);  // one closed batch of 2 + one open
  Tuple t = MakeT(3);
  EXPECT_EQ(b.Push(&t, 0), Batcher::Offer::kDropped);
  EXPECT_EQ(b.queued_tuples(), 3u);
  // Taking the closed batch frees budget; the next offer is accepted.
  EXPECT_EQ(b.TakeReady(0).size(), 2u);
  Tuple t2 = MakeT(4);
  EXPECT_EQ(b.Push(&t2, 0), Batcher::Offer::kAccepted);
}

TEST(BatcherTest, DeferLeavesTupleWithCaller) {
  BatcherOptions opts;
  opts.batch_max_tuples = 2;
  opts.queue_max_tuples = 2;
  opts.policy = OverflowPolicy::kDefer;
  Batcher b(opts);
  for (uint64_t i = 0; i < 2; ++i) {
    Tuple t = MakeT(i);
    EXPECT_EQ(b.Push(&t, 0), Batcher::Offer::kAccepted);
  }
  Tuple held = MakeT(9);
  EXPECT_EQ(b.Push(&held, 0), Batcher::Offer::kDeferred);
  // kDefer is lossless: the refused tuple stays intact with the caller.
  EXPECT_EQ(held.seq, 9u);
  ASSERT_EQ(held.point.size(), 3u);
  EXPECT_EQ(held.point[0], 9u);
  EXPECT_EQ(b.TakeReady(0).size(), 2u);
  EXPECT_EQ(b.Push(&held, 0), Batcher::Offer::kAccepted);
}

// --------------------------------------------------------- ingest pipeline

/// Deployment sized to Abilene (11 monitors) with the paper indices.
std::unique_ptr<MindNet> MakeNet(const Topology& topo, uint64_t seed) {
  MindNetOptions opts;
  opts.sim.seed = seed;
  auto net = std::make_unique<MindNet>(topo.size(), opts);
  EXPECT_TRUE(net->Build().ok());
  for (const IndexDef& def : {MakeIndex1({}), MakeIndex2({}), MakeIndex3({})}) {
    auto cuts = std::make_shared<CutTree>(CutTree::Even(def.schema));
    EXPECT_TRUE(net->CreateIndexEverywhere(def, cuts, 1, 0).ok());
  }
  return net;
}

/// Drives the sim until the pipeline reports done (bounded), plus settle.
void RunToDone(MindNet& net, IngestPipeline& pipe) {
  pipe.Start();
  for (int i = 0; i < 200 && !pipe.done(); ++i) {
    net.sim().RunFor(FromSeconds(5));
  }
  ASSERT_TRUE(pipe.done());
  net.sim().RunFor(FromSeconds(30));
}

Rect WholeDomainOf(const IndexDef& def) {
  std::vector<Interval> ivs;
  for (int d = 0; d < def.schema.dims(); ++d) {
    ivs.push_back({def.schema.attr(d).min, def.schema.attr(d).max});
  }
  return Rect(std::move(ivs));
}

size_t TotalPrimaryTuples(MindNet& net, const std::string& index) {
  size_t n = 0;
  for (size_t i = 0; i < net.size(); ++i) {
    n += net.node(i).PrimaryTupleCount(index);
  }
  return n;
}

/// Content-only digest of an index's stored state across the deployment
/// (excludes scheduler residue like MindNode::dac_busy_until_, which batch
/// pacing legitimately perturbs).
uint64_t ContentDigest(MindNet& net, const std::string& index) {
  Fnv64 d;
  for (size_t i = 0; i < net.size(); ++i) {
    const IndexVersions* v = net.node(i).PrimaryVersions(index);
    if (v != nullptr) v->DigestInto(&d);
  }
  return d.value();
}

/// One heavy aggregate per dst prefix: `pairs` prefix pairs, each with two
/// 50 KB flows in one 30 s window at `router` (passes the Index-2 octet
/// threshold, too few short flows for Index-1).
std::vector<FlowRecord> HeavyFlows(int pairs, int router) {
  std::vector<FlowRecord> flows;
  for (int p = 0; p < pairs; ++p) {
    const uint32_t dst = 0xc0000000u + static_cast<uint32_t>(p) * 0x10000u;
    flows.push_back(MakeFlow(39600.0 + 0.01 * p, router, 0x0a000001u, dst,
                             50'000));
    flows.push_back(MakeFlow(39600.0 + 0.01 * p + 0.005, router, 0x0a000001u,
                             dst, 50'000));
  }
  return flows;
}

TEST(IngestPipelineTest, DeliversBatchedTuplesToTheIndex) {
  Topology topo = Topology::Abilene();
  auto net = MakeNet(topo, 0xfe01);
  VectorTraceSource src(HeavyFlows(/*pairs=*/6, /*router=*/0));
  IngestOptions opts;
  opts.feed_index1 = false;
  opts.feed_index3 = false;
  opts.batcher.batch_max_tuples = 4;
  IngestPipeline pipe(net.get(), &src, opts);
  RunToDone(*net, pipe);

  EXPECT_EQ(pipe.records_in(), 12u);
  EXPECT_EQ(pipe.tuples_out(), 6u);  // one aggregate per prefix pair
  EXPECT_EQ(pipe.tuples_dropped(), 0u);
  EXPECT_GE(pipe.batches_sent(), 1u);
  EXPECT_EQ(pipe.queued_tuples(), 0u);
  EXPECT_EQ(TotalPrimaryTuples(*net, "index2_octets"), 6u);
  EXPECT_EQ(TotalPrimaryTuples(*net, "index1_fanout"), 0u);
  EXPECT_TRUE(net->ValidateInvariants(/*quiescent=*/true).ok());
}

TEST(IngestPipelineTest, BatchSizingKnobsAreContentTransparent) {
  // Same trace, radically different batching: what is stored (per-index
  // content digest) must be identical — batch sizing may only change *when*
  // inserts happen, never *what* ends up indexed.
  Topology topo = Topology::Abilene();
  uint64_t digests[2][3];
  const char* names[3] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  for (int cfg = 0; cfg < 2; ++cfg) {
    auto net = MakeNet(topo, 0xfe02);
    FlowGeneratorOptions gopts;
    gopts.seed = 303;
    gopts.peak_flows_per_router_sec = 40;
    FlowGenerator gen(topo, gopts);
    GeneratorTraceSource src(&gen, /*day=*/0, 39600.0, 39660.0);
    IngestOptions opts;
    opts.batcher.policy = OverflowPolicy::kDefer;  // lossless by construction
    if (cfg == 0) {
      opts.batcher.batch_max_tuples = 2;
      opts.batcher.flush_deadline = FromMillis(50);
      opts.pump_interval = FromMillis(50);
    } else {
      opts.batcher.batch_max_tuples = 64;
      opts.batcher.batch_max_bytes = 1 << 16;
      opts.batcher.flush_deadline = FromSeconds(2);
      opts.pump_interval = FromMillis(500);
    }
    IngestPipeline pipe(net.get(), &src, opts);
    RunToDone(*net, pipe);
    ASSERT_GT(pipe.tuples_out(), 0u);
    ASSERT_EQ(pipe.tuples_dropped(), 0u);
    for (int i = 0; i < 3; ++i) {
      digests[cfg][i] = ContentDigest(*net, names[i]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(digests[0][i], digests[1][i]) << names[i];
  }
}

TEST(IngestPipelineTest, DeferBackpressureIsLossless) {
  Topology topo = Topology::Abilene();
  auto net = MakeNet(topo, 0xfe03);
  // 40 tuples burst into one lane bounded at 8: the lane must defer, and
  // every deferred tuple must still land eventually.
  VectorTraceSource src(HeavyFlows(/*pairs=*/40, /*router=*/0));
  IngestOptions opts;
  opts.feed_index1 = false;
  opts.feed_index3 = false;
  opts.batcher.batch_max_tuples = 4;
  opts.batcher.queue_max_tuples = 8;
  opts.batcher.policy = OverflowPolicy::kDefer;
  IngestPipeline pipe(net.get(), &src, opts);
  RunToDone(*net, pipe);

  EXPECT_GT(pipe.defer_rounds(), 0u) << "back-pressure never engaged";
  EXPECT_EQ(pipe.tuples_dropped(), 0u);
  EXPECT_EQ(pipe.tuples_out(), 40u);
  EXPECT_EQ(TotalPrimaryTuples(*net, "index2_octets"), 40u);
}

TEST(IngestPipelineTest, DropNewestCountsWhatItSheds) {
  Topology topo = Topology::Abilene();
  auto net = MakeNet(topo, 0xfe04);
  VectorTraceSource src(HeavyFlows(/*pairs=*/40, /*router=*/0));
  IngestOptions opts;
  opts.feed_index1 = false;
  opts.feed_index3 = false;
  opts.batcher.batch_max_tuples = 4;
  opts.batcher.queue_max_tuples = 8;
  opts.batcher.policy = OverflowPolicy::kDropNewest;
  IngestPipeline pipe(net.get(), &src, opts);
  RunToDone(*net, pipe);

  EXPECT_GT(pipe.tuples_dropped(), 0u);
  EXPECT_EQ(pipe.tuples_out(), 40u);
  EXPECT_EQ(TotalPrimaryTuples(*net, "index2_octets"),
            pipe.tuples_out() - pipe.tuples_dropped());
}

// ------------------------------------------------------------ query service

class QueryServiceTest : public ::testing::Test {
 protected:
  void Start(QueryServiceOptions qopts, uint64_t seed = 0xfe10) {
    MindNetOptions opts;
    opts.sim.seed = seed;
    net_ = std::make_unique<MindNet>(8, opts);
    ASSERT_TRUE(net_->Build().ok());
    def_ = MakeIndex1({});
    auto cuts = std::make_shared<CutTree>(CutTree::Even(def_.schema));
    ASSERT_TRUE(net_->CreateIndexEverywhere(def_, cuts, 1, 0).ok());
    service_ = std::make_unique<QueryService>(net_.get(), qopts);
    client_ = service_->RegisterClient(0);
  }

  /// Inserts `n` Index-1 tuples spread over dst prefixes and monitors.
  void Load(int n) {
    for (int i = 0; i < n; ++i) {
      AggregateRecord rec;
      rec.src_prefix = IpPrefix(0x0a000000u, 16);
      rec.dst_prefix =
          IpPrefix(0xc0000000u + static_cast<uint32_t>(i) * 0x10000u, 16);
      rec.window_start = 39600 + 30 * (static_cast<uint64_t>(i) % 4);
      rec.fanout = 20 + static_cast<uint32_t>(i);
      rec.router = i % 8;
      auto t = ToIndex1Tuple(rec, static_cast<uint64_t>(i));
      ASSERT_TRUE(t.has_value());
      ASSERT_TRUE(net_->node(static_cast<size_t>(i % 8))
                      .Insert("index1_fanout", std::move(*t))
                      .ok());
      net_->sim().RunFor(FromMillis(20));
    }
    net_->sim().RunFor(FromSeconds(30));
  }

  Rect WholeDomain() const {
    std::vector<Interval> ivs;
    for (int d = 0; d < def_.schema.dims(); ++d) {
      ivs.push_back({def_.schema.attr(d).min, def_.schema.attr(d).max});
    }
    return Rect(std::move(ivs));
  }

  std::unique_ptr<MindNet> net_;
  IndexDef def_;
  std::unique_ptr<QueryService> service_;
  ClientId client_ = 0;
};

TEST_F(QueryServiceTest, PerClientQuotaGates) {
  QueryServiceOptions qopts;
  qopts.per_client_quota = 2;
  qopts.max_inflight = 8;
  Start(qopts);
  Load(8);
  auto sink = [](const Delivery&) {};
  auto r1 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  auto r2 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  auto r3 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1.value().admission, QueryService::Admission::kDispatched);
  EXPECT_EQ(r2.value().admission, QueryService::Admission::kDispatched);
  EXPECT_EQ(r3.value().admission, QueryService::Admission::kRejectedQuota);
  EXPECT_EQ(r3.value().ticket, 0u);
  // Another client is unaffected by this client's quota.
  ClientId other = service_->RegisterClient(3);
  auto r4 = service_->Submit(other, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(QueryService::Admitted(r4.value().admission));
  // Unknown client ids are an error, not a rejection.
  EXPECT_FALSE(service_->Submit(999, "index1_fanout", WholeDomain(), sink).ok());
  net_->sim().RunFor(FromSeconds(60));
  EXPECT_EQ(service_->completed_total(), 3u);
  // Quota released on completion: the client can submit again.
  auto r5 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(r5.ok());
  EXPECT_TRUE(QueryService::Admitted(r5.value().admission));
}

TEST_F(QueryServiceTest, OverloadRejectsAndQueueDispatchesFifo) {
  QueryServiceOptions qopts;
  qopts.max_inflight = 1;
  qopts.max_queue = 1;
  qopts.per_client_quota = 8;
  Start(qopts);
  Load(8);
  std::vector<uint64_t> finished;  // tickets in completion order
  auto sink = [&finished](const Delivery& d) {
    if (d.done) finished.push_back(d.ticket);
  };
  auto r1 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  auto r2 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  auto r3 = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1.value().admission, QueryService::Admission::kDispatched);
  EXPECT_EQ(r2.value().admission, QueryService::Admission::kQueued);
  EXPECT_EQ(r3.value().admission, QueryService::Admission::kRejectedOverload);
  EXPECT_EQ(service_->inflight(), 1u);
  EXPECT_EQ(service_->queued(), 1u);
  EXPECT_EQ(service_->rejected_total(), 1u);

  net_->sim().RunFor(FromSeconds(120));
  EXPECT_EQ(service_->completed_total(), 2u);
  EXPECT_EQ(service_->inflight(), 0u);
  EXPECT_EQ(service_->queued(), 0u);
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_EQ(finished[0], r1.value().ticket);  // FIFO: first in, first done
  EXPECT_EQ(finished[1], r2.value().ticket);
}

TEST_F(QueryServiceTest, CostGateUsesObservedSelectivity) {
  QueryServiceOptions qopts;
  qopts.max_cost_tuples = 5;
  Start(qopts);
  Load(8);
  auto sink = [](const Delivery&) {};
  // Cold histogram: estimates are 0, everything is admitted.
  auto cold = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(QueryService::Admitted(cold.value().admission));
  // Feed 100 observed tuples; a whole-domain scan now estimates ~100.
  for (int i = 0; i < 100; ++i) {
    service_->ObserveInsert(
        "index1_fanout",
        {0xc0000000u + static_cast<uint64_t>(i) * 0x10000u,
         39600 + static_cast<uint64_t>(i % 4) * 30, 20});
  }
  auto scan = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().admission, QueryService::Admission::kRejectedCost);
  // A narrow rectangle in an empty corner still clears the gate.
  Rect narrow({{0, 100}, {0, 100}, {0, 5}});
  auto cheap = service_->Submit(client_, "index1_fanout", narrow, sink);
  ASSERT_TRUE(cheap.ok());
  EXPECT_TRUE(QueryService::Admitted(cheap.value().admission));
  net_->sim().RunFor(FromSeconds(60));
}

TEST_F(QueryServiceTest, DeadlineCancelDeliversIncomplete) {
  QueryServiceOptions qopts;
  Start(qopts);
  Load(16);
  std::optional<Delivery> final;
  auto sink = [&final](const Delivery& d) {
    if (d.done) final = d;
  };
  // 10 µs: no overlay hop completes that fast, so the service-side deadline
  // must fire, cancel through MindNode::CancelQuery, and deliver incomplete.
  auto r = service_->Submit(client_, "index1_fanout", WholeDomain(), sink,
                            /*deadline=*/10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().admission, QueryService::Admission::kDispatched);
  net_->sim().RunFor(FromSeconds(60));
  ASSERT_TRUE(final.has_value());
  EXPECT_FALSE(final->complete);
  EXPECT_EQ(service_->deadline_cancels(), 1u);
  EXPECT_EQ(service_->completed_total(), 1u);  // finished, albeit incomplete
  // The core reclaimed the tracker state.
  for (size_t i = 0; i < net_->size(); ++i) {
    EXPECT_EQ(net_->node(i).pending_query_count(), 0u);
  }
}

TEST_F(QueryServiceTest, StandingQueryRefiresAndTracksEpochs) {
  QueryServiceOptions qopts;
  Start(qopts);
  Load(8);
  EXPECT_EQ(service_->IndexEpoch("index1_fanout"), 1u);
  std::vector<Delivery> finals;
  auto sink = [&finals](const Delivery& d) {
    if (d.done) finals.push_back(d);
  };
  auto sid = service_->AddStanding(client_, "index1_fanout", WholeDomain(),
                                   FromSeconds(5), sink);
  ASSERT_TRUE(sid.ok());
  net_->sim().RunFor(FromSeconds(12));  // fires at 0, 5, 10
  ASSERT_GE(finals.size(), 2u);
  for (const auto& d : finals) {
    EXPECT_EQ(d.standing_id, sid.value());
    EXPECT_TRUE(d.complete);
    EXPECT_EQ(d.epoch, 1u);
  }
  const size_t before = finals.size();

  // Install a new cut version: the epoch observer must pick it up and stamp
  // subsequent standing results with the new epoch.
  auto cuts = std::make_shared<CutTree>(CutTree::Even(def_.schema));
  ASSERT_TRUE(net_->InstallCutsEverywhere("index1_fanout", 2, cuts,
                                          net_->sim().now() + FromSeconds(1))
                  .ok());
  EXPECT_EQ(service_->IndexEpoch("index1_fanout"), 2u);
  net_->sim().RunFor(FromSeconds(10));
  ASSERT_GT(finals.size(), before);
  EXPECT_EQ(finals.back().epoch, 2u);

  // Removal stops re-execution.
  ASSERT_TRUE(service_->RemoveStanding(sid.value()).ok());
  const size_t after_remove = finals.size();
  net_->sim().RunFor(FromSeconds(20));
  EXPECT_EQ(finals.size(), after_remove);
  EXPECT_FALSE(service_->RemoveStanding(sid.value()).ok());
}

TEST_F(QueryServiceTest, ResultsStreamInChunks) {
  QueryServiceOptions qopts;
  qopts.delivery_chunk_tuples = 2;
  Start(qopts);
  Load(9);
  std::vector<Delivery> chunks;
  auto sink = [&chunks](const Delivery& d) { chunks.push_back(d); };
  auto r = service_->Submit(client_, "index1_fanout", WholeDomain(), sink);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(QueryService::Admitted(r.value().admission));
  net_->sim().RunFor(FromSeconds(120));
  ASSERT_EQ(chunks.size(), 5u);  // 9 tuples in chunks of 2
  size_t total = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].ticket, r.value().ticket);
    EXPECT_LE(chunks[i].tuples.size(), 2u);
    EXPECT_EQ(chunks[i].done, i + 1 == chunks.size());
    total += chunks[i].tuples.size();
  }
  EXPECT_EQ(total, 9u);
  EXPECT_TRUE(chunks.back().complete);
  EXPECT_GT(chunks.back().latency, 0u);
}

// ----------------------------------------------------------------- facade

TEST(FrontendTest, WiresIngestIntoTheCostModel) {
  Topology topo = Topology::Abilene();
  auto net = MakeNet(topo, 0xfe20);
  FlowGeneratorOptions gopts;
  gopts.seed = 505;
  gopts.peak_flows_per_router_sec = 40;
  FlowGenerator gen(topo, gopts);
  auto src = std::make_unique<GeneratorTraceSource>(&gen, /*day=*/0, 39600.0,
                                                    39660.0);
  FrontendOptions fopts;
  fopts.query.max_cost_tuples = 10;
  Frontend fe(net.get(), std::move(src), fopts);
  ClientId c = fe.queries().RegisterClient(2);
  fe.Start();
  for (int i = 0; i < 200 && !fe.ingest().done(); ++i) {
    net->sim().RunFor(FromSeconds(5));
  }
  ASSERT_TRUE(fe.ingest().done());
  ASSERT_GT(fe.ingest().tuples_out(), 10u);
  net->sim().RunFor(FromSeconds(30));

  // Ingest observed every emitted tuple, so a whole-domain scan of a fed
  // index now estimates far above the gate — rejected without a core query.
  // (Index 2 is the reliably fed one here: this trace's aggregates clear the
  // octet threshold often, while fanout >= 16 is rare at this traffic level.)
  ASSERT_GT(net->TotalPrimaryTuples("index2_octets"), 10u);
  const IndexDef def = MakeIndex2({});
  std::vector<Interval> ivs;
  for (int d = 0; d < def.schema.dims(); ++d) {
    ivs.push_back({def.schema.attr(d).min, def.schema.attr(d).max});
  }
  auto sink = [](const Delivery&) {};
  auto r = fe.queries().Submit(c, "index2_octets", Rect(std::move(ivs)), sink);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().admission, QueryService::Admission::kRejectedCost);
  // An index the trace never fed stays cold: admitted optimistically.
  auto cold = fe.queries().Submit(c, "index1_fanout", WholeDomainOf(MakeIndex1({})), sink);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(QueryService::Admitted(cold.value().admission));
  net->sim().RunFor(FromSeconds(60));
}

}  // namespace
}  // namespace frontend
}  // namespace mind
