// Cross-module integration tests: the full pipeline (generator → aggregation
// → filters → distributed index → query) checked against offline evaluation,
// multi-index isolation, trace round-tripping and the end-to-end anomaly
// workflow.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <sstream>

#include "anomaly/mind_detector.h"
#include "mind/mind_net.h"
#include "traffic/aggregator.h"
#include "traffic/flow_generator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"
#include "traffic/trace_io.h"

namespace mind {
namespace {

QueryResult RunQuery(MindNet& net, size_t from, const std::string& index,
                     const Rect& rect) {
  std::optional<QueryResult> out;
  auto qid = net.node(from).Query(index, rect,
                                  [&](const QueryResult& r) { out = r; });
  EXPECT_TRUE(qid.ok());
  SimTime deadline = net.sim().now() + FromSeconds(120);
  while (!out && net.sim().now() < deadline) net.sim().RunFor(FromMillis(200));
  EXPECT_TRUE(out.has_value());
  return out.value_or(QueryResult{});
}

// The distributed index must answer exactly like an offline scan of the same
// filtered tuple stream — for all three paper indices at once.
TEST(PipelineIntegrationTest, DistributedEqualsOfflineForAllThreeIndices) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 11111;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 22222;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  // Sweep the structure validators over the whole net every 10 s of virtual
  // time while the pipeline runs (no-op in MIND_VALIDATORS=OFF builds).
  net.EnablePeriodicValidation(FromSeconds(10));
  ASSERT_TRUE(net.Build().ok());
  for (const IndexDef& def : {MakeIndex1(), MakeIndex2(), MakeIndex3()}) {
    ASSERT_TRUE(net.CreateIndexEverywhere(
                       def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                    .ok());
  }

  // Generate + aggregate + filter offline, and insert the same tuples.
  std::vector<Tuple> t1, t2, t3;
  uint64_t seq = 0;
  const double window = 30;
  for (double t = 39600; t < 40500; t += window) {
    Aggregator agg({window, 16, 300});
    gen.Generate(0, t, t + window, [&](const FlowRecord& f) { agg.Add(f); });
    SimTime when = net.sim().now() + FromMillis(10);
    for (const auto& rec : agg.DrainAll()) {
      if (auto tup = ToIndex1Tuple(rec, ++seq)) {
        t1.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index1_fanout", *tup).ok());
        });
      }
      if (auto tup = ToIndex2Tuple(rec, ++seq)) {
        t2.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index2_octets", *tup).ok());
        });
      }
      if (auto tup = ToIndex3Tuple(rec, ++seq)) {
        t3.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index3_flowsize", *tup).ok());
        });
      }
    }
    net.sim().RunFor(FromSeconds(window));
  }
  net.sim().RunFor(FromSeconds(30));
  // Quiescent now: the fleet-wide overlay invariants must hold too.
  ASSERT_TRUE(net.ValidateInvariants().ok());

  ASSERT_GT(t2.size(), 20u);  // the workload must be non-trivial
  EXPECT_EQ(net.TotalPrimaryTuples("index1_fanout"), t1.size());
  EXPECT_EQ(net.TotalPrimaryTuples("index2_octets"), t2.size());
  EXPECT_EQ(net.TotalPrimaryTuples("index3_flowsize"), t3.size());

  struct Case {
    const char* index;
    const std::vector<Tuple>* offline;
  };
  Rng rng(5);
  for (const Case& c : {Case{"index1_fanout", &t1}, Case{"index2_octets", &t2},
                        Case{"index3_flowsize", &t3}}) {
    const IndexDef* def = net.node(0).GetIndexDef(c.index);
    for (int iter = 0; iter < 5; ++iter) {
      Value a = rng.Uniform(0x100000000ull), b = rng.Uniform(0x100000000ull);
      Rect q({{std::min(a, b), std::max(a, b)},
              {39600, 40500},
              {0, def->schema.attr(2).max}});
      QueryResult r = RunQuery(net, rng.Uniform(net.size()), c.index, q);
      EXPECT_TRUE(r.complete);
      std::multiset<uint64_t> expected, got;
      for (const auto& t : *c.offline) {
        if (q.Contains(t.point)) expected.insert(t.seq);
      }
      for (const auto& t : r.tuples) got.insert(t.seq);
      EXPECT_EQ(got, expected) << c.index << " query " << iter;
    }
  }
}

// Indices are independent: dropping one leaves the others fully queryable.
TEST(PipelineIntegrationTest, DropIsolation) {
  MindNetOptions mopts;
  mopts.sim.seed = 333;
  MindNet net(8, mopts);
  ASSERT_TRUE(net.Build().ok());
  IndexDef a, b;
  a.name = "keep";
  a.schema = Schema({{"x", 0, 999}});
  b.name = "drop";
  b.schema = Schema({{"x", 0, 999}});
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     a, std::make_shared<CutTree>(CutTree::Even(a.schema)))
                  .ok());
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     b, std::make_shared<CutTree>(CutTree::Even(b.schema)))
                  .ok());
  for (uint64_t i = 0; i < 50; ++i) {
    Tuple t;
    t.point = {i * 17 % 1000};
    t.seq = i;
    t.origin = static_cast<int>(i % 8);
    ASSERT_TRUE(net.node(i % 8).Insert("keep", t).ok());
    ASSERT_TRUE(net.node(i % 8).Insert("drop", t).ok());
  }
  net.sim().RunFor(FromSeconds(20));
  ASSERT_TRUE(net.node(2).DropIndex("drop").ok());
  net.sim().RunFor(FromSeconds(10));
  for (size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).HasIndex("drop"));
    EXPECT_TRUE(net.node(i).HasIndex("keep"));
  }
  QueryResult r = RunQuery(net, 1, "keep", Rect({{0, 999}}));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.tuples.size(), 50u);
  // Inserting into the dropped index now fails cleanly.
  Tuple t;
  t.point = {1};
  EXPECT_TRUE(net.node(0).Insert("drop", t).IsNotFound());
}

// The full §5 anomaly workflow at test scale: inject, index, ground-truth,
// query, capture.
TEST(AnomalyIntegrationTest, EndToEndScanCapture) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 444;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 445;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  ASSERT_TRUE(net.Build().ok());
  IndexDef def = MakeIndex1();
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());

  AnomalyEvent scan;
  scan.type = AnomalyType::kPortScan;
  scan.start_sec = 36060;
  scan.duration_sec = 90;
  scan.src_prefix = 3;
  scan.dst_prefix = 12;
  scan.magnitude = 40000;
  AnomalyInjector injector(&gen);

  std::vector<AggregateRecord> all_aggregates;
  uint64_t seq = 0;
  for (double t = 36000; t < 36300; t += 30) {
    Aggregator agg({30, 16, 300});
    gen.Generate(0, t, t + 30, [&](const FlowRecord& f) { agg.Add(f); });
    for (const auto& f : injector.Generate(scan, t, t + 30)) agg.Add(f);
    SimTime when = net.sim().now() + FromMillis(10);
    for (const auto& rec : agg.DrainAll()) {
      all_aggregates.push_back(rec);
      if (auto tup = ToIndex1Tuple(rec, ++seq)) {
        net.sim().events().ScheduleAt(when, [&net, tup] {
          (void)net.node(tup->origin).Insert("index1_fanout", *tup);
        });
      }
    }
    net.sim().RunFor(FromSeconds(30));
  }
  net.sim().RunFor(FromSeconds(30));

  GroundTruthOptions gt;
  gt.fanout = 1500;
  auto anomalies = GroundTruthDetector(gt).Detect(all_aggregates);
  bool found_scan = false;
  MindAnomalyDetector detector(&net, "index1_fanout", "index1_fanout");
  for (const auto& anomaly : anomalies) {
    if (anomaly.type != AnomalyType::kPortScan) continue;
    found_scan = true;
    auto outcome = detector.QueryFanout({0, 5, 9}, anomaly.first_window - 60,
                                        anomaly.last_window + 60, gt.fanout);
    EXPECT_TRUE(outcome.all_complete);
    EXPECT_TRUE(MindAnomalyDetector::Captures(outcome, anomaly));
    EXPECT_GE(outcome.result_size, anomaly.record_count);
  }
  EXPECT_TRUE(found_scan) << "injected scan not in ground truth";
}

// --------------------------------------------------------------- telemetry

namespace {

struct TelemetryRunOutcome {
  std::multiset<uint64_t> tuple_seqs;
  bool complete = false;
  SimTime latency = 0;
  SimTime end_time = 0;
  uint64_t query_id = 0;
};

// One fixed insert+query scenario, with run-time telemetry on or off.
TelemetryRunOutcome RunTelemetryScenario(bool telemetry_on) {
  MindNetOptions mopts;
  mopts.sim.seed = 90210;
  MindNet net(12, mopts);
  net.sim().telemetry().set_enabled(telemetry_on);
  EXPECT_TRUE(net.Build().ok());
  IndexDef def;
  def.name = "idx";
  def.schema = Schema({{"x", 0, 9999}, {"y", 0, 9999}});
  EXPECT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());
  for (uint64_t i = 0; i < 300; ++i) {
    Tuple t;
    t.point = {i * 37 % 10000, i * 101 % 10000};
    t.seq = i;
    t.origin = static_cast<int>(i % 12);
    EXPECT_TRUE(net.node(i % 12).Insert("idx", t).ok());
    if (i % 50 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(20));
  QueryResult r = RunQuery(net, 3, "idx", Rect({{1000, 8000}, {0, 9999}}));
  TelemetryRunOutcome out;
  for (const auto& t : r.tuples) out.tuple_seqs.insert(t.seq);
  out.complete = r.complete;
  out.latency = r.latency;
  out.end_time = net.sim().now();
  out.query_id = r.query_id;
  return out;
}

}  // namespace

// Telemetry must be a pure observer: running the identical scenario with the
// registry+tracer enabled and disabled yields the same tuples, the same
// completion status and the same sim-clock timings (no RNG draws, no events).
TEST(TelemetryIntegrationTest, RecordingDoesNotPerturbResults) {
  TelemetryRunOutcome on = RunTelemetryScenario(true);
  TelemetryRunOutcome off = RunTelemetryScenario(false);
  EXPECT_FALSE(on.tuple_seqs.empty());
  EXPECT_EQ(on.tuple_seqs, off.tuple_seqs);
  EXPECT_EQ(on.complete, off.complete);
  EXPECT_EQ(on.latency, off.latency);
  EXPECT_EQ(on.end_time, off.end_time);
}

// ------------------------------------------------------------ routing cache

namespace {

struct RouteCacheRunOutcome {
  std::multiset<uint64_t> tuple_seqs;
  std::vector<size_t> primary_counts;
  bool complete = false;
  SimTime latency = 0;
  SimTime end_time = 0;
  uint64_t cache_hits = 0;
};

// One fixed insert+crash+revive+query scenario with the per-node routing
// cache on or off. The crash/revive leg exercises the cache-invalidation
// sites (peer death, avoidance windows, rejoin).
RouteCacheRunOutcome RunRouteCacheScenario(bool cache_on) {
  MindNetOptions mopts;
  mopts.sim.seed = 424242;
  mopts.overlay.route_cache = cache_on;
  MindNet net(16, mopts);
  EXPECT_TRUE(net.Build().ok());
  IndexDef def;
  def.name = "idx";
  def.schema = Schema({{"x", 0, 9999}, {"y", 0, 9999}});
  EXPECT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());
  for (uint64_t i = 0; i < 400; ++i) {
    Tuple t;
    t.point = {i * 37 % 10000, i * 101 % 10000};
    t.seq = i;
    t.origin = static_cast<int>(i % 16);
    EXPECT_TRUE(net.node(i % 16).Insert("idx", t).ok());
    if (i % 50 == 0) net.sim().RunFor(FromSeconds(1));
    if (i == 200) {
      net.node(5).Crash();
      net.sim().RunFor(FromSeconds(15));
      net.node(5).Revive(0);
      net.sim().RunFor(FromSeconds(15));
    }
  }
  net.sim().RunFor(FromSeconds(30));
  QueryResult r = RunQuery(net, 3, "idx", Rect({{1000, 8000}, {0, 9999}}));
  RouteCacheRunOutcome out;
  for (const auto& t : r.tuples) out.tuple_seqs.insert(t.seq);
  for (size_t n = 0; n < net.size(); ++n) {
    out.primary_counts.push_back(net.node(n).PrimaryTupleCount("idx"));
  }
  out.complete = r.complete;
  out.latency = r.latency;
  out.end_time = net.sim().now();
  out.cache_hits = net.sim().metrics().counter("overlay.route.cache_hits").value();
  return out;
}

}  // namespace

// The routing cache must be a pure memoization of BestNextHop: the identical
// scenario with the cache on and off yields bit-identical placement, query
// results and sim-clock timings, while the cached run actually hits.
TEST(RouteCacheIntegrationTest, CacheIsTransparent) {
  RouteCacheRunOutcome on = RunRouteCacheScenario(true);
  RouteCacheRunOutcome off = RunRouteCacheScenario(false);
  EXPECT_FALSE(on.tuple_seqs.empty());
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_GT(on.cache_hits, 0u);
  EXPECT_EQ(off.cache_hits, 0u);
#endif
  EXPECT_EQ(on.tuple_seqs, off.tuple_seqs);
  EXPECT_EQ(on.primary_counts, off.primary_counts);
  EXPECT_EQ(on.complete, off.complete);
  EXPECT_EQ(on.latency, off.latency);
  EXPECT_EQ(on.end_time, off.end_time);
}

// ----------------------------------------------------- store layout knobs

namespace {

struct StorePathRunOutcome {
  std::multiset<uint64_t> tuple_seqs;
  bool complete = false;
  SimTime latency = 0;
  SimTime end_time = 0;
  uint64_t digest = 0;
  uint64_t compactions = 0;
  uint64_t cover_hits = 0;
  uint64_t bitmap_bits = 0;
};

// One fixed insert+crash+revive+query scenario with store compaction, the
// cover cache and the index backend toggled. Enough inserts that the
// compaction ratio trigger fires, plus a crash/revive leg to exercise cache
// invalidation.
StorePathRunOutcome RunStorePathScenario(
    bool compaction, bool cover_cache,
    IndexBackendKind backend = IndexBackendKind::kSortedRuns) {
  MindNetOptions mopts;
  mopts.sim.seed = 515151;
  mopts.mind.store_compaction = compaction;
  mopts.mind.cover_cache = cover_cache;
  mopts.mind.store_backend = backend;
  MindNet net(12, mopts);
  EXPECT_TRUE(net.Build().ok());
  IndexDef def;
  def.name = "idx";
  def.schema = Schema({{"x", 0, 9999}, {"y", 0, 9999}});
  EXPECT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());
  for (uint64_t i = 0; i < 1500; ++i) {
    Tuple t;
    t.point = {i * 37 % 10000, i * 101 % 10000};
    t.seq = i;
    t.origin = static_cast<int>(i % 12);
    EXPECT_TRUE(net.node(i % 12).Insert("idx", t).ok());
    if (i % 200 == 0) net.sim().RunFor(FromSeconds(1));
    if (i == 700) {
      net.node(4).Crash();
      net.sim().RunFor(FromSeconds(15));
      net.node(4).Revive(0);
      net.sim().RunFor(FromSeconds(15));
    }
  }
  net.sim().RunFor(FromSeconds(30));
  StorePathRunOutcome out;
  // Several queries so covers repeat (the cache's hit case) and results are
  // compared across more than one rectangle.
  for (int q = 0; q < 3; ++q) {
    QueryResult r = RunQuery(net, 3 + q, "idx",
                             Rect({{1000u + 500u * q, 8000}, {0, 9999}}));
    for (const auto& t : r.tuples) out.tuple_seqs.insert(t.seq);
    out.complete = r.complete;
    out.latency = r.latency;
  }
  out.end_time = net.sim().now();
  out.digest = net.StateDigest();
  out.compactions = net.sim().metrics().counter("storage.compaction.count").value();
  out.cover_hits =
      net.sim().metrics().counter("storage.cover_cache.hits").value();
  out.bitmap_bits =
      net.sim().metrics().counter("storage.backend.bitmap.set_bits").value();
  return out;
}

}  // namespace

// Compaction and the cover cache are layout/memoization only: every knob
// combination must yield bit-identical tuples, latencies, sim clock and
// whole-net digest — while the enabled runs actually compact and hit.
TEST(StorePathIntegrationTest, LayoutKnobsAreTransparent) {
  StorePathRunOutcome base = RunStorePathScenario(true, true);
  StorePathRunOutcome no_compact = RunStorePathScenario(false, true);
  StorePathRunOutcome no_cache = RunStorePathScenario(true, false);
  StorePathRunOutcome plain = RunStorePathScenario(false, false);
  EXPECT_FALSE(base.tuple_seqs.empty());
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_GT(base.compactions, 0u);
  EXPECT_EQ(no_compact.compactions, 0u);
  EXPECT_GT(base.cover_hits, 0u);
  EXPECT_EQ(plain.cover_hits, 0u);
#endif
  for (const StorePathRunOutcome* o : {&no_compact, &no_cache, &plain}) {
    EXPECT_EQ(base.tuple_seqs, o->tuple_seqs);
    EXPECT_EQ(base.complete, o->complete);
    EXPECT_EQ(base.latency, o->latency);
    EXPECT_EQ(base.end_time, o->end_time);
    EXPECT_EQ(base.digest, o->digest);
  }
}

// The index backend is pure physical layout (docs/BACKENDS.md): sorted runs,
// hierarchical bitmaps and the adaptive chooser must all yield bit-identical
// tuples, latencies, sim clock and whole-net digest, with or without the
// cover cache — while the bitmap runs demonstrably index through bitmaps.
TEST(StorePathIntegrationTest, BackendsAreTransparent) {
  StorePathRunOutcome base =
      RunStorePathScenario(true, true, IndexBackendKind::kSortedRuns);
  StorePathRunOutcome bitmap =
      RunStorePathScenario(true, true, IndexBackendKind::kBitmap);
  StorePathRunOutcome adaptive =
      RunStorePathScenario(true, true, IndexBackendKind::kAdaptive);
  StorePathRunOutcome bitmap_plain =
      RunStorePathScenario(true, false, IndexBackendKind::kBitmap);
  StorePathRunOutcome adaptive_plain =
      RunStorePathScenario(true, false, IndexBackendKind::kAdaptive);
  EXPECT_FALSE(base.tuple_seqs.empty());
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_EQ(base.bitmap_bits, 0u);
  EXPECT_GT(bitmap.bitmap_bits, 0u);
  EXPECT_GT(bitmap_plain.bitmap_bits, 0u);
  EXPECT_EQ(bitmap.compactions, 0u);  // bitmaps never merge runs
#endif
  for (const StorePathRunOutcome* o :
       {&bitmap, &adaptive, &bitmap_plain, &adaptive_plain}) {
    EXPECT_EQ(base.tuple_seqs, o->tuple_seqs);
    EXPECT_EQ(base.complete, o->complete);
    EXPECT_EQ(base.latency, o->latency);
    EXPECT_EQ(base.end_time, o->end_time);
    EXPECT_EQ(base.digest, o->digest);
  }
}

#ifndef MIND_TELEMETRY_DISABLED
// With telemetry on, the instrumented paths populate the registry and the
// flight recorder end to end.
TEST(TelemetryIntegrationTest, InstrumentsAndTracesPopulate) {
  MindNetOptions mopts;
  mopts.sim.seed = 90211;
  MindNet net(12, mopts);
  ASSERT_TRUE(net.Build().ok());
  IndexDef def;
  def.name = "idx";
  def.schema = Schema({{"x", 0, 9999}});
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());
  for (uint64_t i = 0; i < 100; ++i) {
    Tuple t;
    t.point = {i * 97 % 10000};
    t.seq = i;
    t.origin = static_cast<int>(i % 12);
    ASSERT_TRUE(net.node(i % 12).Insert("idx", t).ok());
  }
  net.sim().RunFor(FromSeconds(20));
  QueryResult r = RunQuery(net, 5, "idx", Rect({{0, 9999}}));
  ASSERT_TRUE(r.complete);

  auto& m = net.sim().metrics();
  EXPECT_EQ(m.counter("mind.insert.count").value(), 100u);
  EXPECT_GE(m.counter("mind.query.count").value(), 1u);
  EXPECT_GT(m.counter("sim.events.processed").value(), 0u);
  EXPECT_GT(m.counter("sim.net.messages").value(), 0u);
  EXPECT_GT(m.counter("overlay.join.attempts").value(), 0u);
  EXPECT_EQ(m.FindHistogram("mind.insert.latency_ms")->count(), 100u);
  EXPECT_GT(m.FindHistogram("mind.query.latency_ms")->count(), 0u);
  EXPECT_GT(m.FindHistogram("storage.scan.rows_returned")->count(), 0u);

  // The query's span tree is in the flight recorder: a root "query" span with
  // resolve/reply descendants.
  const auto* spans = net.sim().tracer().GetTrace(r.query_id);
  ASSERT_NE(spans, nullptr);
  auto tree = net.sim().tracer().Tree(r.query_id);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].span->name, "query");
  EXPECT_TRUE(tree[0].span->closed);
  bool saw_resolve = false, saw_reply = false;
  for (const auto& s : *spans) {
    if (s.name == "query.resolve") saw_resolve = true;
    if (s.name == "query.reply") saw_reply = true;
  }
  EXPECT_TRUE(saw_resolve);
  EXPECT_TRUE(saw_reply);
}
#endif  // MIND_TELEMETRY_DISABLED

// ---------------------------------------------------------------- trace IO

TEST(TraceIoTest, FlowsRoundTrip) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 777;
  FlowGenerator gen(topo, gopts);
  auto flows = gen.GenerateVec(0, 40000, 40060);
  ASSERT_GT(flows.size(), 10u);

  std::stringstream buf;
  ASSERT_TRUE(WriteFlowsCsv(buf, flows).ok());
  auto back = ReadFlowsCsv(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ((*back)[i].src_ip, flows[i].src_ip);
    EXPECT_EQ((*back)[i].dst_ip, flows[i].dst_ip);
    EXPECT_EQ((*back)[i].bytes, flows[i].bytes);
    EXPECT_EQ((*back)[i].router, flows[i].router);
    EXPECT_NEAR((*back)[i].time_sec, flows[i].time_sec, 1e-3);
  }
}

TEST(TraceIoTest, AggregatesRoundTrip) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 778;
  FlowGenerator gen(topo, gopts);
  auto aggregates = AggregateAll(gen.GenerateVec(0, 40000, 40120));
  ASSERT_GT(aggregates.size(), 5u);

  std::stringstream buf;
  ASSERT_TRUE(WriteAggregatesCsv(buf, aggregates).ok());
  auto back = ReadAggregatesCsv(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), aggregates.size());
  for (size_t i = 0; i < aggregates.size(); ++i) {
    EXPECT_EQ((*back)[i].src_prefix, aggregates[i].src_prefix);
    EXPECT_EQ((*back)[i].octets, aggregates[i].octets);
    EXPECT_EQ((*back)[i].fanout, aggregates[i].fanout);
    EXPECT_EQ((*back)[i].top_dst_port, aggregates[i].top_dst_port);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  {
    std::stringstream buf("not,a,header\n");
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
  {
    std::stringstream buf;
    buf << "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router\n"
        << "1.2.3.4,5.6.7.8,80\n";  // too few fields
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
  {
    std::stringstream buf;
    buf << "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router\n"
        << "1.2.3.4,5.6.7.8,99999,80,100,1,5.0,0\n";  // port out of range
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
}

}  // namespace
}  // namespace mind
