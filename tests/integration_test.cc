// Cross-module integration tests: the full pipeline (generator → aggregation
// → filters → distributed index → query) checked against offline evaluation,
// multi-index isolation, trace round-tripping and the end-to-end anomaly
// workflow.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <sstream>

#include "anomaly/mind_detector.h"
#include "mind/mind_net.h"
#include "traffic/aggregator.h"
#include "traffic/flow_generator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"
#include "traffic/trace_io.h"

namespace mind {
namespace {

QueryResult RunQuery(MindNet& net, size_t from, const std::string& index,
                     const Rect& rect) {
  std::optional<QueryResult> out;
  auto qid = net.node(from).Query(index, rect,
                                  [&](const QueryResult& r) { out = r; });
  EXPECT_TRUE(qid.ok());
  SimTime deadline = net.sim().now() + FromSeconds(120);
  while (!out && net.sim().now() < deadline) net.sim().RunFor(FromMillis(200));
  EXPECT_TRUE(out.has_value());
  return out.value_or(QueryResult{});
}

// The distributed index must answer exactly like an offline scan of the same
// filtered tuple stream — for all three paper indices at once.
TEST(PipelineIntegrationTest, DistributedEqualsOfflineForAllThreeIndices) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 11111;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 22222;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  ASSERT_TRUE(net.Build().ok());
  for (const IndexDef& def : {MakeIndex1(), MakeIndex2(), MakeIndex3()}) {
    ASSERT_TRUE(net.CreateIndexEverywhere(
                       def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                    .ok());
  }

  // Generate + aggregate + filter offline, and insert the same tuples.
  std::vector<Tuple> t1, t2, t3;
  uint64_t seq = 0;
  const double window = 30;
  for (double t = 39600; t < 40500; t += window) {
    Aggregator agg({window, 16, 300});
    gen.Generate(0, t, t + window, [&](const FlowRecord& f) { agg.Add(f); });
    SimTime when = net.sim().now() + FromMillis(10);
    for (const auto& rec : agg.DrainAll()) {
      if (auto tup = ToIndex1Tuple(rec, ++seq)) {
        t1.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index1_fanout", *tup).ok());
        });
      }
      if (auto tup = ToIndex2Tuple(rec, ++seq)) {
        t2.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index2_octets", *tup).ok());
        });
      }
      if (auto tup = ToIndex3Tuple(rec, ++seq)) {
        t3.push_back(*tup);
        net.sim().events().ScheduleAt(when, [&net, tup] {
          ASSERT_TRUE(
              net.node(tup->origin).Insert("index3_flowsize", *tup).ok());
        });
      }
    }
    net.sim().RunFor(FromSeconds(window));
  }
  net.sim().RunFor(FromSeconds(30));

  ASSERT_GT(t2.size(), 20u);  // the workload must be non-trivial
  EXPECT_EQ(net.TotalPrimaryTuples("index1_fanout"), t1.size());
  EXPECT_EQ(net.TotalPrimaryTuples("index2_octets"), t2.size());
  EXPECT_EQ(net.TotalPrimaryTuples("index3_flowsize"), t3.size());

  struct Case {
    const char* index;
    const std::vector<Tuple>* offline;
  };
  Rng rng(5);
  for (const Case& c : {Case{"index1_fanout", &t1}, Case{"index2_octets", &t2},
                        Case{"index3_flowsize", &t3}}) {
    const IndexDef* def = net.node(0).GetIndexDef(c.index);
    for (int iter = 0; iter < 5; ++iter) {
      Value a = rng.Uniform(0x100000000ull), b = rng.Uniform(0x100000000ull);
      Rect q({{std::min(a, b), std::max(a, b)},
              {39600, 40500},
              {0, def->schema.attr(2).max}});
      QueryResult r = RunQuery(net, rng.Uniform(net.size()), c.index, q);
      EXPECT_TRUE(r.complete);
      std::multiset<uint64_t> expected, got;
      for (const auto& t : *c.offline) {
        if (q.Contains(t.point)) expected.insert(t.seq);
      }
      for (const auto& t : r.tuples) got.insert(t.seq);
      EXPECT_EQ(got, expected) << c.index << " query " << iter;
    }
  }
}

// Indices are independent: dropping one leaves the others fully queryable.
TEST(PipelineIntegrationTest, DropIsolation) {
  MindNetOptions mopts;
  mopts.sim.seed = 333;
  MindNet net(8, mopts);
  ASSERT_TRUE(net.Build().ok());
  IndexDef a, b;
  a.name = "keep";
  a.schema = Schema({{"x", 0, 999}});
  b.name = "drop";
  b.schema = Schema({{"x", 0, 999}});
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     a, std::make_shared<CutTree>(CutTree::Even(a.schema)))
                  .ok());
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     b, std::make_shared<CutTree>(CutTree::Even(b.schema)))
                  .ok());
  for (uint64_t i = 0; i < 50; ++i) {
    Tuple t;
    t.point = {i * 17 % 1000};
    t.seq = i;
    t.origin = static_cast<int>(i % 8);
    ASSERT_TRUE(net.node(i % 8).Insert("keep", t).ok());
    ASSERT_TRUE(net.node(i % 8).Insert("drop", t).ok());
  }
  net.sim().RunFor(FromSeconds(20));
  ASSERT_TRUE(net.node(2).DropIndex("drop").ok());
  net.sim().RunFor(FromSeconds(10));
  for (size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).HasIndex("drop"));
    EXPECT_TRUE(net.node(i).HasIndex("keep"));
  }
  QueryResult r = RunQuery(net, 1, "keep", Rect({{0, 999}}));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.tuples.size(), 50u);
  // Inserting into the dropped index now fails cleanly.
  Tuple t;
  t.point = {1};
  EXPECT_TRUE(net.node(0).Insert("drop", t).IsNotFound());
}

// The full §5 anomaly workflow at test scale: inject, index, ground-truth,
// query, capture.
TEST(AnomalyIntegrationTest, EndToEndScanCapture) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 444;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 445;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  ASSERT_TRUE(net.Build().ok());
  IndexDef def = MakeIndex1();
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());

  AnomalyEvent scan;
  scan.type = AnomalyType::kPortScan;
  scan.start_sec = 36060;
  scan.duration_sec = 90;
  scan.src_prefix = 3;
  scan.dst_prefix = 12;
  scan.magnitude = 40000;
  AnomalyInjector injector(&gen);

  std::vector<AggregateRecord> all_aggregates;
  uint64_t seq = 0;
  for (double t = 36000; t < 36300; t += 30) {
    Aggregator agg({30, 16, 300});
    gen.Generate(0, t, t + 30, [&](const FlowRecord& f) { agg.Add(f); });
    for (const auto& f : injector.Generate(scan, t, t + 30)) agg.Add(f);
    SimTime when = net.sim().now() + FromMillis(10);
    for (const auto& rec : agg.DrainAll()) {
      all_aggregates.push_back(rec);
      if (auto tup = ToIndex1Tuple(rec, ++seq)) {
        net.sim().events().ScheduleAt(when, [&net, tup] {
          (void)net.node(tup->origin).Insert("index1_fanout", *tup);
        });
      }
    }
    net.sim().RunFor(FromSeconds(30));
  }
  net.sim().RunFor(FromSeconds(30));

  GroundTruthOptions gt;
  gt.fanout = 1500;
  auto anomalies = GroundTruthDetector(gt).Detect(all_aggregates);
  bool found_scan = false;
  MindAnomalyDetector detector(&net, "index1_fanout", "index1_fanout");
  for (const auto& anomaly : anomalies) {
    if (anomaly.type != AnomalyType::kPortScan) continue;
    found_scan = true;
    auto outcome = detector.QueryFanout({0, 5, 9}, anomaly.first_window - 60,
                                        anomaly.last_window + 60, gt.fanout);
    EXPECT_TRUE(outcome.all_complete);
    EXPECT_TRUE(MindAnomalyDetector::Captures(outcome, anomaly));
    EXPECT_GE(outcome.result_size, anomaly.record_count);
  }
  EXPECT_TRUE(found_scan) << "injected scan not in ground truth";
}

// ---------------------------------------------------------------- trace IO

TEST(TraceIoTest, FlowsRoundTrip) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 777;
  FlowGenerator gen(topo, gopts);
  auto flows = gen.GenerateVec(0, 40000, 40060);
  ASSERT_GT(flows.size(), 10u);

  std::stringstream buf;
  ASSERT_TRUE(WriteFlowsCsv(buf, flows).ok());
  auto back = ReadFlowsCsv(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ((*back)[i].src_ip, flows[i].src_ip);
    EXPECT_EQ((*back)[i].dst_ip, flows[i].dst_ip);
    EXPECT_EQ((*back)[i].bytes, flows[i].bytes);
    EXPECT_EQ((*back)[i].router, flows[i].router);
    EXPECT_NEAR((*back)[i].time_sec, flows[i].time_sec, 1e-3);
  }
}

TEST(TraceIoTest, AggregatesRoundTrip) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 778;
  FlowGenerator gen(topo, gopts);
  auto aggregates = AggregateAll(gen.GenerateVec(0, 40000, 40120));
  ASSERT_GT(aggregates.size(), 5u);

  std::stringstream buf;
  ASSERT_TRUE(WriteAggregatesCsv(buf, aggregates).ok());
  auto back = ReadAggregatesCsv(buf);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), aggregates.size());
  for (size_t i = 0; i < aggregates.size(); ++i) {
    EXPECT_EQ((*back)[i].src_prefix, aggregates[i].src_prefix);
    EXPECT_EQ((*back)[i].octets, aggregates[i].octets);
    EXPECT_EQ((*back)[i].fanout, aggregates[i].fanout);
    EXPECT_EQ((*back)[i].top_dst_port, aggregates[i].top_dst_port);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  {
    std::stringstream buf("not,a,header\n");
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
  {
    std::stringstream buf;
    buf << "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router\n"
        << "1.2.3.4,5.6.7.8,80\n";  // too few fields
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
  {
    std::stringstream buf;
    buf << "src_ip,dst_ip,src_port,dst_port,bytes,packets,time_sec,router\n"
        << "1.2.3.4,5.6.7.8,99999,80,100,1,5.0,0\n";  // port out of range
    EXPECT_FALSE(ReadFlowsCsv(buf).ok());
  }
}

}  // namespace
}  // namespace mind
