#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "mind/mind_net.h"
#include "util/rng.h"

namespace mind {
namespace {

IndexDef TestIndexDef() {
  IndexDef def;
  def.name = "test_idx";
  // (x, timestamp, y): timestamp versioned.
  def.schema = Schema({{"x", 0, 9999}, {"ts", 0, UINT64_MAX}, {"y", 0, 9999}});
  def.carried = {"payload"};
  def.time_attr = 1;
  return def;
}

CutTreeRef EvenCutsFor(const IndexDef& def) {
  return std::make_shared<CutTree>(CutTree::Even(def.schema));
}

Tuple MakeTuple(Value x, SimTime ts, Value y, int origin, uint64_t seq) {
  Tuple t;
  t.point = {x, ts, y};
  t.extra = {x * 1000 + y};
  t.origin = origin;
  t.seq = seq;
  return t;
}

// Runs a query synchronously: issues it and runs the sim until the callback.
QueryResult RunQuery(MindNet& net, size_t from, const std::string& index,
                     const Rect& rect) {
  std::optional<QueryResult> out;
  auto qid = net.node(from).Query(index, rect,
                                  [&](const QueryResult& r) { out = r; });
  EXPECT_TRUE(qid.ok()) << qid.status().ToString();
  SimTime deadline = net.sim().now() + FromSeconds(120);
  while (!out.has_value() && net.sim().now() < deadline) {
    net.sim().RunFor(FromSeconds(1));
  }
  EXPECT_TRUE(out.has_value()) << "query never completed";
  return out.value_or(QueryResult{});
}

class MindNetTest : public ::testing::Test {
 protected:
  void Start(size_t n, int replication = 1, uint64_t seed = 0x5eed) {
    MindNetOptions opts;
    opts.sim.seed = seed;
    opts.mind.replication = replication;
    net_ = std::make_unique<MindNet>(n, opts);
    ASSERT_TRUE(net_->Build().ok());
    def_ = TestIndexDef();
    ASSERT_TRUE(
        net_->CreateIndexEverywhere(def_, EvenCutsFor(def_), 1, 0).ok());
  }

  std::unique_ptr<MindNet> net_;
  IndexDef def_;
};

TEST_F(MindNetTest, CreateIndexReachesAllNodes) {
  Start(8);
  for (size_t i = 0; i < net_->size(); ++i) {
    EXPECT_TRUE(net_->node(i).HasIndex("test_idx"));
    const IndexDef* def = net_->node(i).GetIndexDef("test_idx");
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->schema.dims(), 3);
    EXPECT_EQ(def->time_attr, 1);
  }
}

TEST_F(MindNetTest, CreateIndexValidation) {
  Start(4);
  IndexDef bad = def_;                 // duplicate name
  EXPECT_TRUE(net_->node(0)
                  .CreateIndex(bad, EvenCutsFor(bad))
                  .IsAlreadyExists());
  IndexDef other = def_;
  other.name = "other";
  EXPECT_TRUE(net_->node(0)
                  .CreateIndex(other, nullptr)
                  .IsInvalidArgument());
  Schema wrong({{"z", 0, 1}});
  EXPECT_TRUE(net_->node(0)
                  .CreateIndex(other, std::make_shared<CutTree>(CutTree::Even(wrong)))
                  .IsInvalidArgument());
}

TEST_F(MindNetTest, DropIndexRemovesEverywhere) {
  Start(8);
  ASSERT_TRUE(net_->node(3).DropIndex("test_idx").ok());
  net_->sim().RunFor(FromSeconds(10));
  for (size_t i = 0; i < net_->size(); ++i) {
    EXPECT_FALSE(net_->node(i).HasIndex("test_idx"));
  }
  EXPECT_TRUE(net_->node(0).DropIndex("nope").IsNotFound());
}

TEST_F(MindNetTest, InsertStoresAtOwnerAndCountsMatch) {
  Start(8);
  Rng rng(1);
  const int kTuples = 200;
  for (int i = 0; i < kTuples; ++i) {
    size_t src = rng.Uniform(net_->size());
    Tuple t = MakeTuple(rng.Uniform(10000), 1000 + i, rng.Uniform(10000),
                        static_cast<int>(src), i);
    ASSERT_TRUE(net_->node(src).Insert("test_idx", std::move(t)).ok());
    net_->sim().RunFor(FromMillis(50));
  }
  net_->sim().RunFor(FromSeconds(30));
  EXPECT_EQ(net_->TotalPrimaryTuples("test_idx"), kTuples);
  EXPECT_EQ(net_->stored().size(), kTuples);
  for (const auto& info : net_->stored()) {
    EXPECT_GT(info.latency, 0u);
    EXPECT_LE(info.hops, 12);
  }
}

TEST_F(MindNetTest, InsertValidation) {
  Start(4);
  Tuple wrong;
  wrong.point = {1, 2};  // arity 2 != 3
  EXPECT_TRUE(net_->node(0).Insert("test_idx", wrong).IsInvalidArgument());
  EXPECT_TRUE(net_->node(0).Insert("missing", MakeTuple(1, 1, 1, 0, 0))
                  .IsNotFound());
}

TEST_F(MindNetTest, InsertBatchValidation) {
  Start(4);
  EXPECT_TRUE(net_->node(0).InsertBatch("test_idx", {}).ok());  // no-op
  Tuple wrong;
  wrong.point = {1, 2};
  EXPECT_TRUE(net_->node(0)
                  .InsertBatch("test_idx", {MakeTuple(1, 1, 1, 0, 0), wrong})
                  .IsInvalidArgument());
  EXPECT_TRUE(net_->node(0)
                  .InsertBatch("missing", {MakeTuple(1, 1, 1, 0, 0)})
                  .IsNotFound());
}

// InsertBatch promises placement identical to per-tuple Insert: feed the same
// tuple stream both ways (fresh nets, same seed) and the per-node primary
// counts and queryable contents must match exactly.
TEST_F(MindNetTest, InsertBatchMatchesSingleInsertPlacement) {
  const int kBatches = 16, kPerBatch = 12;
  auto make_tuples = [&](int b) {
    std::vector<Tuple> tuples;
    Rng rng(7000 + b);
    for (int i = 0; i < kPerBatch; ++i) {
      tuples.push_back(MakeTuple(rng.Uniform(10000), 1000 + b * kPerBatch + i,
                                 rng.Uniform(10000), b % 8,
                                 b * kPerBatch + i));
    }
    return tuples;
  };

  auto run = [&](bool batched) {
    Start(8);
    for (int b = 0; b < kBatches; ++b) {
      auto tuples = make_tuples(b);
      size_t src = b % 8;
      if (batched) {
        EXPECT_TRUE(net_->node(src).InsertBatch("test_idx", std::move(tuples)).ok());
      } else {
        for (auto& t : tuples) {
          EXPECT_TRUE(net_->node(src).Insert("test_idx", std::move(t)).ok());
        }
      }
      net_->sim().RunFor(FromMillis(500));
    }
    net_->sim().RunFor(FromSeconds(30));
    std::vector<size_t> counts;
    for (size_t n = 0; n < net_->size(); ++n) {
      counts.push_back(net_->node(n).PrimaryTupleCount("test_idx"));
    }
    QueryResult r =
        RunQuery(*net_, 2, "test_idx", Rect({{0, 9999}, {0, 100000}, {0, 9999}}));
    std::multiset<uint64_t> seqs;
    for (const auto& t : r.tuples) seqs.insert(t.seq);
    return std::make_pair(counts, seqs);
  };

  auto [batch_counts, batch_seqs] = run(true);
  auto [single_counts, single_seqs] = run(false);
  EXPECT_EQ(batch_seqs.size(), static_cast<size_t>(kBatches * kPerBatch));
  EXPECT_EQ(batch_counts, single_counts);
  EXPECT_EQ(batch_seqs, single_seqs);
}

TEST_F(MindNetTest, QueryReturnsExactlyMatchingTuples) {
  Start(8);
  Rng rng(2);
  std::vector<Tuple> all;
  for (int i = 0; i < 300; ++i) {
    size_t src = rng.Uniform(net_->size());
    Tuple t = MakeTuple(rng.Uniform(10000), 1000 + rng.Uniform(5000),
                        rng.Uniform(10000), static_cast<int>(src), i);
    all.push_back(t);
    ASSERT_TRUE(net_->node(src).Insert("test_idx", std::move(t)).ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(30));

  for (int iter = 0; iter < 10; ++iter) {
    Value x1 = rng.Uniform(10000), x2 = rng.Uniform(10000);
    Rect q({{std::min(x1, x2), std::max(x1, x2)},
            {0, UINT64_MAX},
            {0, 9999}});
    QueryResult r = RunQuery(*net_, rng.Uniform(net_->size()), "test_idx", q);
    EXPECT_TRUE(r.complete);
    std::set<uint64_t> expected, got;
    for (const auto& t : all) {
      if (q.Contains(t.point)) expected.insert(t.seq);
    }
    for (const auto& t : r.tuples) {
      EXPECT_TRUE(q.Contains(t.point));
      got.insert(t.seq);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST_F(MindNetTest, QueryCostIsSmall) {
  Start(16);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    size_t src = rng.Uniform(net_->size());
    ASSERT_TRUE(net_->node(src)
                    .Insert("test_idx",
                            MakeTuple(rng.Uniform(10000), 1000 + i,
                                      rng.Uniform(10000),
                                      static_cast<int>(src), i))
                    .ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(20));
  // Narrow queries touch few nodes.
  for (int iter = 0; iter < 10; ++iter) {
    Value x = rng.Uniform(9000);
    Rect q({{x, x + 200}, {0, UINT64_MAX}, {0, 9999}});
    QueryResult r = RunQuery(*net_, rng.Uniform(net_->size()), "test_idx", q);
    EXPECT_TRUE(r.complete);
    EXPECT_LE(net_->QueryVisitCount(r.query_id), 10u);
  }
}

TEST_F(MindNetTest, NegativeQueryCompletesEmpty) {
  Start(8);
  // No data inserted at all.
  Rect q({{0, 9999}, {0, UINT64_MAX}, {0, 9999}});
  QueryResult r = RunQuery(*net_, 2, "test_idx", q);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.tuples.empty());
  EXPECT_GE(r.responders, 1u);  // negative replies still arrive
}

TEST_F(MindNetTest, QueryValidation) {
  Start(4);
  auto r1 = net_->node(0).Query("missing", Rect({{0, 1}}), [](auto&) {});
  EXPECT_TRUE(r1.status().IsNotFound());
  auto r2 = net_->node(0).Query("test_idx", Rect({{0, 1}}), [](auto&) {});
  EXPECT_TRUE(r2.status().IsInvalidArgument());
}

TEST_F(MindNetTest, ReplicationStoresCopies) {
  Start(8, /*replication=*/1);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(net_->node(0)
                    .Insert("test_idx",
                            MakeTuple(rng.Uniform(10000), 1000 + i,
                                      rng.Uniform(10000), 0, i))
                    .ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(20));
  size_t replicas = 0;
  for (size_t i = 0; i < net_->size(); ++i) {
    replicas += net_->node(i).ReplicaTupleCount("test_idx");
  }
  EXPECT_EQ(replicas, 100u);  // m=1: exactly one replica per tuple
}

TEST_F(MindNetTest, FullReplicationStoresAtAllPeers) {
  Start(8, /*replication=*/-1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net_->node(0)
                    .Insert("test_idx", MakeTuple(i * 100, 1000 + i, 50, 0, i))
                    .ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(20));
  size_t replicas = 0;
  for (size_t i = 0; i < net_->size(); ++i) {
    replicas += net_->node(i).ReplicaTupleCount("test_idx");
  }
  EXPECT_GT(replicas, 50u);  // every peer of the owner holds a copy
}

TEST_F(MindNetTest, QueriesSurviveNodeFailureWithReplication) {
  MindNetOptions opts;
  opts.sim.seed = 77;
  opts.mind.replication = 1;
  opts.mind.query_timeout = FromSeconds(20);
  opts.overlay.heartbeat_interval = FromSeconds(2);
  net_ = std::make_unique<MindNet>(12, opts);
  ASSERT_TRUE(net_->Build().ok());
  def_ = TestIndexDef();
  ASSERT_TRUE(net_->CreateIndexEverywhere(def_, EvenCutsFor(def_), 1, 0).ok());

  Rng rng(5);
  std::vector<Tuple> all;
  for (int i = 0; i < 200; ++i) {
    size_t src = rng.Uniform(net_->size());
    Tuple t = MakeTuple(rng.Uniform(10000), 1000 + i, rng.Uniform(10000),
                        static_cast<int>(src), i);
    all.push_back(t);
    ASSERT_TRUE(net_->node(src).Insert("test_idx", std::move(t)).ok());
    net_->sim().RunFor(FromMillis(30));
  }
  net_->sim().RunFor(FromSeconds(30));

  // Kill one node; its sibling should serve its region from replicas.
  net_->node(7).Crash();
  net_->sim().RunFor(FromSeconds(40));

  Rect q({{0, 9999}, {0, UINT64_MAX}, {0, 9999}});
  QueryResult r = RunQuery(*net_, 1, "test_idx", q);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.tuples.size(), all.size()) << "lost tuples despite replication";
}

TEST_F(MindNetTest, VersionedQueriesUseCorrectCuts) {
  Start(8);
  // Version 1 covers ts < 100000; install version 2 with balanced cuts for
  // ts >= 100000.
  Rng rng(6);
  Histogram h(def_.schema, 8);
  for (int i = 0; i < 500; ++i) {
    h.Add({rng.Uniform(500), 50000 + rng.Uniform(1000), rng.Uniform(10000)});
  }
  auto balanced = CutTree::Balanced(def_.schema, h, 6);
  ASSERT_TRUE(balanced.ok());
  ASSERT_TRUE(net_->InstallCutsEverywhere(
                      "test_idx", 2,
                      std::make_shared<CutTree>(std::move(balanced).value()),
                      100000)
                  .ok());

  // Insert one batch into each version epoch.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(net_->node(i % 8)
                    .Insert("test_idx",
                            MakeTuple(rng.Uniform(500), 50000 + i, 7, 0, i))
                    .ok());
    ASSERT_TRUE(net_->node(i % 8)
                    .Insert("test_idx",
                            MakeTuple(rng.Uniform(500), 200000 + i, 7, 0,
                                      1000 + i))
                    .ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(30));

  // Query only the old epoch.
  QueryResult r1 = RunQuery(*net_, 0, "test_idx",
                            Rect({{0, 9999}, {0, 99999}, {0, 9999}}));
  EXPECT_TRUE(r1.complete);
  EXPECT_EQ(r1.tuples.size(), 100u);
  // Query only the new epoch.
  QueryResult r2 = RunQuery(*net_, 0, "test_idx",
                            Rect({{0, 9999}, {100000, UINT64_MAX}, {0, 9999}}));
  EXPECT_TRUE(r2.complete);
  EXPECT_EQ(r2.tuples.size(), 100u);
  // Query spanning both versions.
  QueryResult r3 = RunQuery(*net_, 0, "test_idx",
                            Rect({{0, 9999}, {0, UINT64_MAX}, {0, 9999}}));
  EXPECT_TRUE(r3.complete);
  EXPECT_EQ(r3.tuples.size(), 200u);
}

TEST_F(MindNetTest, RebalanceServiceInstallsBalancedCuts) {
  Start(8);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    // Skewed: all x in [0, 500).
    ASSERT_TRUE(net_->node(i % 8)
                    .Insert("test_idx",
                            MakeTuple(rng.Uniform(500), 1000 + i,
                                      rng.Uniform(10000), 0, i))
                    .ok());
    net_->sim().RunFor(FromMillis(10));
  }
  net_->sim().RunFor(FromSeconds(20));

  MindNode::RebalanceParams params;
  params.index = "test_idx";
  params.source_version = 1;
  params.bins_per_dim = 8;
  params.cut_depth = 6;
  params.new_version = 2;
  params.new_start = 50 * kUsPerDay;
  params.collect_window = FromSeconds(15);
  std::optional<Status> done;
  ASSERT_TRUE(net_->node(0)
                  .StartRebalance(params, [&](Status s) { done = s; })
                  .ok());
  net_->sim().RunFor(FromSeconds(60));
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->ok()) << done->ToString();
  for (size_t i = 0; i < net_->size(); ++i) {
    const IndexVersions* pv = net_->node(i).PrimaryVersions("test_idx");
    ASSERT_NE(pv, nullptr);
    EXPECT_TRUE(pv->HasVersion(2)) << "node " << i << " missing version 2";
    // The new cuts must differ from even cuts (the data was skewed).
    EXPECT_GT(pv->Cuts(2)->materialized_depth(), 0);
  }
}

TEST_F(MindNetTest, LateJoinerLearnsIndicesAndServesOldData) {
  MindNetOptions opts;
  opts.sim.seed = 99;
  net_ = std::make_unique<MindNet>(9, opts);
  // Build with only the first 8 nodes.
  net_->node(0).BecomeFirst();
  for (size_t i = 1; i < 8; ++i) {
    net_->node(i).Join(0);
    net_->sim().RunFor(FromSeconds(3));
  }
  ASSERT_EQ(net_->JoinedCount(), 8u);
  def_ = TestIndexDef();
  ASSERT_TRUE(net_->CreateIndexEverywhere(def_, EvenCutsFor(def_), 1, 0).ok());

  Rng rng(8);
  std::vector<Tuple> all;
  for (int i = 0; i < 200; ++i) {
    size_t src = rng.Uniform(8);
    Tuple t = MakeTuple(rng.Uniform(10000), 1000 + i, rng.Uniform(10000),
                        static_cast<int>(src), i);
    all.push_back(t);
    ASSERT_TRUE(net_->node(src).Insert("test_idx", std::move(t)).ok());
    net_->sim().RunFor(FromMillis(20));
  }
  net_->sim().RunFor(FromSeconds(20));

  // Node 8 joins now; data inserted before its join stays at its split
  // parent, reachable through the forward pointer.
  net_->node(8).Join(0);
  SimTime deadline = net_->sim().now() + FromSeconds(120);
  while (net_->JoinedCount() < 9 && net_->sim().now() < deadline) {
    net_->sim().RunFor(FromSeconds(1));
  }
  ASSERT_EQ(net_->JoinedCount(), 9u);
  net_->sim().RunFor(FromSeconds(10));
  EXPECT_TRUE(net_->node(8).HasIndex("test_idx"));

  QueryResult r = RunQuery(*net_, 8, "test_idx",
                           Rect({{0, 9999}, {0, UINT64_MAX}, {0, 9999}}));
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.tuples.size(), all.size());
}

TEST_F(MindNetTest, AnomalyByProductListsObservingMonitors) {
  // §5: query results identify which monitors saw the anomalous traffic.
  Start(8);
  for (int origin = 0; origin < 4; ++origin) {
    ASSERT_TRUE(net_->node(origin)
                    .Insert("test_idx", MakeTuple(42, 5000, 42, origin, origin))
                    .ok());
    net_->sim().RunFor(FromMillis(50));
  }
  net_->sim().RunFor(FromSeconds(20));
  QueryResult r = RunQuery(*net_, 6, "test_idx",
                           Rect({{42, 42}, {0, UINT64_MAX}, {42, 42}}));
  EXPECT_TRUE(r.complete);
  std::set<int> monitors;
  for (const auto& t : r.tuples) monitors.insert(t.origin);
  EXPECT_EQ(monitors, (std::set<int>{0, 1, 2, 3}));
}

// --------------------------------------------- Query lifecycle reclamation

TEST_F(MindNetTest, CancelQueryFinalizesIncompleteAndReclaims) {
  Start(8);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net_->node(rng.Uniform(8))
                    .Insert("test_idx", MakeTuple(rng.Uniform(10000), 1000 + i,
                                                  rng.Uniform(10000), 0, i))
                    .ok());
    net_->sim().RunFor(FromMillis(30));
  }
  net_->sim().RunFor(FromSeconds(20));

#ifndef MIND_TELEMETRY_DISABLED
  const uint64_t timeouts_before =
      net_->sim().metrics().counter("mind.query.timeouts").value();
#endif
  std::optional<QueryResult> out;
  auto qid = net_->node(2).Query(
      "test_idx", Rect({{0, 9999}, {0, UINT64_MAX}, {0, 9999}}),
      [&](const QueryResult& r) { out = r; });
  ASSERT_TRUE(qid.ok());
  EXPECT_EQ(net_->node(2).pending_query_count(), 1u);

  // Cancel while the query is still fanning out: the callback must fire
  // exactly once (complete=false), the tracker state must be reclaimed, and
  // the cancellation must be counted with the timeouts.
  EXPECT_TRUE(net_->node(2).CancelQuery(qid.value()));
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->complete);
  EXPECT_EQ(net_->node(2).pending_query_count(), 0u);
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_EQ(net_->sim().metrics().counter("mind.query.timeouts").value(),
            timeouts_before + 1);
#endif

  // A second cancel (and a cancel of a never-issued id) is a no-op.
  EXPECT_FALSE(net_->node(2).CancelQuery(qid.value()));
  EXPECT_FALSE(net_->node(2).CancelQuery(0xdeadbeef));

  // Straggler replies to the finalized query must be ignored, not crash or
  // re-fire the callback.
  out.reset();
  net_->sim().RunFor(FromSeconds(60));
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(net_->ValidateInvariants(/*quiescent=*/true).ok());
}

TEST_F(MindNetTest, CrashFiresPendingQueryCallbacksIncomplete) {
  Start(8);
  ASSERT_TRUE(net_->node(0).Insert("test_idx", MakeTuple(5, 2000, 5, 0, 1)).ok());
  net_->sim().RunFor(FromSeconds(10));

  int fired = 0;
  int complete = 0;
  Rect everything({{0, 9999}, {0, UINT64_MAX}, {0, 9999}});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net_->node(4)
                    .Query("test_idx", everything,
                           [&](const QueryResult& r) {
                             ++fired;
                             if (r.complete) ++complete;
                           })
                    .ok());
  }
  EXPECT_EQ(net_->node(4).pending_query_count(), 3u);

  // A crash must not leak pending queries: every outstanding callback fires
  // (incomplete), so callers blocked on the node learn their fate.
  net_->node(4).Crash();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(complete, 0);
  EXPECT_EQ(net_->node(4).pending_query_count(), 0u);
  net_->sim().RunFor(FromSeconds(30));
  EXPECT_EQ(fired, 3);  // stragglers never re-fire a finalized callback
}

}  // namespace
}  // namespace mind
