// Test/bench helper: build an overlay of N nodes and assert its invariants.
#ifndef MIND_TESTS_OVERLAY_HARNESS_H_
#define MIND_TESTS_OVERLAY_HARNESS_H_

#include <memory>
#include <vector>

#include "overlay/overlay_node.h"
#include "sim/simulator.h"
#include "util/bitcode.h"

namespace mind {

struct OverlayFleet {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<OverlayNode>> nodes;

  OverlayNode& operator[](size_t i) { return *nodes[i]; }
  size_t size() const { return nodes.size(); }

  size_t JoinedCount() const {
    size_t n = 0;
    for (const auto& node : nodes) {
      if (node->joined()) ++n;
    }
    return n;
  }

  /// True iff the joined nodes' codes form a complete prefix-free cover of
  /// the code space (exact check — no floating-point mass sum).
  bool CodesFormCompleteCover() const {
    std::vector<BitCode> codes;
    for (const auto& node : nodes) {
      if (!node->alive() || !node->joined()) continue;
      codes.push_back(node->code());
    }
    return CheckCompleteCover(codes).ok();
  }

  /// Fleet-wide structural validation; only meaningful at quiescence (between
  /// topology changes — see ValidateOverlayInvariants).
  Status Validate() const {
    std::vector<const OverlayNode*> ptrs;
    ptrs.reserve(nodes.size());
    for (const auto& node : nodes) ptrs.push_back(node.get());
    return ValidateOverlayInvariants(ptrs);
  }

  int MaxCodeLength() const {
    int mx = 0;
    for (const auto& node : nodes) {
      if (node->alive() && node->joined()) {
        mx = std::max(mx, node->code().length());
      }
    }
    return mx;
  }

  /// Index of the live joined node owning `target` (code is a prefix), or -1.
  int OwnerOf(const BitCode& target) const {
    for (size_t i = 0; i < nodes.size(); ++i) {
      const auto& node = nodes[i];
      if (node->alive() && node->joined() &&
          node->code().IsPrefixOf(target)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

/// Builds an N-node overlay. If `concurrent`, all nodes start joining at
/// once (exercises the serialization protocol); otherwise joins are staggered
/// by `stagger`. Runs the simulator until all nodes joined or `deadline`.
inline OverlayFleet BuildOverlay(size_t n, OverlayOptions options,
                                 bool concurrent = false,
                                 uint64_t sim_seed = 0x5eed,
                                 SimTime stagger = FromMillis(300),
                                 SimTime deadline = FromSeconds(600)) {
  OverlayFleet fleet;
  SimulatorOptions sopts;
  sopts.seed = sim_seed;
  fleet.sim = std::make_unique<Simulator>(sopts);
  for (size_t i = 0; i < n; ++i) {
    options.seed = sim_seed + 1000 + i;
    fleet.nodes.push_back(
        std::make_unique<OverlayNode>(fleet.sim.get(), options));
  }
  fleet.nodes[0]->BecomeFirst();
  for (size_t i = 1; i < n; ++i) {
    if (concurrent) {
      fleet.nodes[i]->Join(0);
    } else {
      OverlayNode* node = fleet.nodes[i].get();
      fleet.sim->events().Schedule(stagger * i, [node] { node->Join(0); });
    }
  }
  while (fleet.JoinedCount() < n && fleet.sim->now() < deadline) {
    fleet.sim->RunFor(FromSeconds(1));
  }
  return fleet;
}

}  // namespace mind

#endif  // MIND_TESTS_OVERLAY_HARNESS_H_
