#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "overlay_harness.h"
#include "util/rng.h"

namespace mind {
namespace {

struct AppMsg : Message {
  explicit AppMsg(int v) : value(v) {}
  int value;
  const char* TypeName() const override { return "AppMsg"; }
};

// ---------------------------------------------------------------- Join

TEST(OverlayJoinTest, FirstNodeOwnsEverything) {
  OverlayFleet fleet = BuildOverlay(1, {});
  EXPECT_TRUE(fleet[0].joined());
  EXPECT_EQ(fleet[0].code().length(), 0);
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
}

TEST(OverlayJoinTest, TwoNodesSplitTheSpace) {
  OverlayFleet fleet = BuildOverlay(2, {});
  ASSERT_EQ(fleet.JoinedCount(), 2u);
  EXPECT_EQ(fleet[0].code().ToString(), "0");
  EXPECT_EQ(fleet[1].code().ToString(), "1");
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
  // Each is the other's peer.
  EXPECT_TRUE(fleet[0].peers().count(1));
  EXPECT_TRUE(fleet[1].peers().count(0));
}

class OverlaySizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OverlaySizeTest, SequentialJoinsProduceCompleteBalancedCover) {
  const size_t n = GetParam();
  OverlayFleet fleet = BuildOverlay(n, {});
  ASSERT_EQ(fleet.JoinedCount(), n);
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
  // Adler's join keeps the hypercube balanced w.h.p.; allow generous slack.
  double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(fleet.MaxCodeLength(), static_cast<int>(2 * log2n + 3));
}

TEST_P(OverlaySizeTest, ConcurrentJoinsAllComplete) {
  const size_t n = GetParam();
  OverlayFleet fleet = BuildOverlay(n, {}, /*concurrent=*/true);
  ASSERT_EQ(fleet.JoinedCount(), n) << "concurrent joins deadlocked or stalled";
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
}

INSTANTIATE_TEST_SUITE_P(Sizes, OverlaySizeTest,
                         ::testing::Values(3, 8, 16, 34, 64));

TEST(OverlayJoinTest, ConcurrentJoinsSerializedWithoutDuplicateCodes) {
  OverlayFleet fleet = BuildOverlay(24, {}, /*concurrent=*/true, /*seed=*/99);
  ASSERT_EQ(fleet.JoinedCount(), 24u);
  std::set<std::string> codes;
  for (auto& node : fleet.nodes) codes.insert(node->code().ToString());
  EXPECT_EQ(codes.size(), 24u) << "duplicate vertex codes assigned";
}

TEST(OverlayJoinTest, PeerTablesHaveEntryPerBitPosition) {
  OverlayFleet fleet = BuildOverlay(16, {});
  ASSERT_EQ(fleet.JoinedCount(), 16u);
  for (auto& node : fleet.nodes) {
    const BitCode& code = node->code();
    for (int i = 0; i < code.length(); ++i) {
      bool have = false;
      for (const auto& [peer, pcode] : node->peers()) {
        if (code.CommonPrefixLen(pcode) == i) {
          have = true;
          break;
        }
      }
      EXPECT_TRUE(have) << "node " << node->id() << " code " << code.ToString()
                        << " lacks a peer differing first at bit " << i;
    }
  }
}

// ---------------------------------------------------------------- Routing

TEST(OverlayRouteTest, DeliversToOwner) {
  OverlayFleet fleet = BuildOverlay(16, {});
  ASSERT_EQ(fleet.JoinedCount(), 16u);
  Rng rng(5);
  int delivered = 0;
  std::vector<int> hop_counts;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver([&, id = node->id()](NodeId, const MessagePtr& inner,
                                              int hops) {
      auto* m = dynamic_cast<AppMsg*>(inner.get());
      ASSERT_NE(m, nullptr);
      ++delivered;
      hop_counts.push_back(hops);
      // Delivered at the true owner.
      // (value encodes the expected owner index)
      EXPECT_EQ(id, m->value);
    });
  }
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    BitCode target = BitCode::FromBits(rng.Next(), 64);
    int owner = fleet.OwnerOf(target);
    ASSERT_GE(owner, 0);
    size_t src = rng.Uniform(fleet.size());
    fleet[src].Route(target, std::make_shared<AppMsg>(owner));
  }
  fleet.sim->RunFor(FromSeconds(30));
  EXPECT_EQ(delivered, kSends);
  for (int h : hop_counts) EXPECT_LE(h, fleet.MaxCodeLength() + 1);
}

TEST(OverlayRouteTest, ShortTargetPrefixDeliversSomewhereUnderPrefix) {
  OverlayFleet fleet = BuildOverlay(16, {});
  ASSERT_EQ(fleet.JoinedCount(), 16u);
  BitCode prefix = BitCode::FromString("01");
  int delivered = 0;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver(
        [&, nodep = node.get()](NodeId, const MessagePtr&, int) {
          ++delivered;
          // Owner's code and the target must be prefix-compatible.
          int cpl = nodep->code().CommonPrefixLen(prefix);
          EXPECT_EQ(cpl, std::min(nodep->code().length(), prefix.length()));
        });
  }
  fleet[7].Route(prefix, std::make_shared<AppMsg>(0));
  fleet.sim->RunFor(FromSeconds(10));
  EXPECT_EQ(delivered, 1);
}

TEST(OverlayRouteTest, SelfDeliveryWhenOwner) {
  OverlayFleet fleet = BuildOverlay(4, {});
  ASSERT_EQ(fleet.JoinedCount(), 4u);
  // Build a target squarely inside node 2's own region.
  BitCode target = fleet[2].code();
  while (target.length() < 16) target.PushBack(0);
  int delivered_at = -1;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver([&, id = node->id()](NodeId, const MessagePtr&, int) {
      delivered_at = id;
    });
  }
  fleet[2].Route(target, std::make_shared<AppMsg>(0));
  fleet.sim->RunFor(FromSeconds(5));
  EXPECT_EQ(delivered_at, 2);
}

TEST(OverlayRouteTest, HopsGrowLogarithmically) {
  OverlayFleet fleet = BuildOverlay(64, {});
  ASSERT_EQ(fleet.JoinedCount(), 64u);
  Rng rng(7);
  std::vector<int> hops;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver(
        [&](NodeId, const MessagePtr&, int h) { hops.push_back(h); });
  }
  for (int i = 0; i < 300; ++i) {
    BitCode target = BitCode::FromBits(rng.Next(), 64);
    fleet[rng.Uniform(64)].Route(target, std::make_shared<AppMsg>(0));
  }
  fleet.sim->RunFor(FromSeconds(30));
  ASSERT_EQ(hops.size(), 300u);
  double mean = 0;
  for (int h : hops) mean += h;
  mean /= hops.size();
  // log2(64) = 6; expect mean around half that, clearly below it.
  EXPECT_LT(mean, 7.0);
  EXPECT_GT(mean, 1.0);
}

// ---------------------------------------------------------------- Broadcast

TEST(OverlayBroadcastTest, ReachesEveryNodeExactlyOnce) {
  OverlayFleet fleet = BuildOverlay(16, {});
  ASSERT_EQ(fleet.JoinedCount(), 16u);
  std::map<NodeId, int> seen;
  for (auto& node : fleet.nodes) {
    node->set_on_broadcast([&, id = node->id()](NodeId origin,
                                                const MessagePtr& inner) {
      EXPECT_EQ(origin, 3);
      EXPECT_NE(dynamic_cast<AppMsg*>(inner.get()), nullptr);
      seen[id]++;
    });
  }
  fleet[3].Broadcast(std::make_shared<AppMsg>(1));
  fleet.sim->RunFor(FromSeconds(10));
  EXPECT_EQ(seen.size(), 16u);
  for (auto& [id, n] : seen) EXPECT_EQ(n, 1) << "node " << id;
}

TEST(OverlayBroadcastTest, MultipleBroadcastsKeptDistinct) {
  OverlayFleet fleet = BuildOverlay(8, {});
  ASSERT_EQ(fleet.JoinedCount(), 8u);
  std::map<NodeId, std::multiset<int>> got;
  for (auto& node : fleet.nodes) {
    node->set_on_broadcast(
        [&, id = node->id()](NodeId, const MessagePtr& inner) {
          got[id].insert(dynamic_cast<AppMsg*>(inner.get())->value);
        });
  }
  fleet[0].Broadcast(std::make_shared<AppMsg>(10));
  fleet[5].Broadcast(std::make_shared<AppMsg>(20));
  fleet[0].Broadcast(std::make_shared<AppMsg>(30));
  fleet.sim->RunFor(FromSeconds(10));
  for (auto& [id, vals] : got) {
    EXPECT_EQ(vals, (std::multiset<int>{10, 20, 30})) << "node " << id;
  }
}

// ---------------------------------------------------------------- Direct

TEST(OverlayDirectTest, DirectSendAndFailureCallback) {
  OverlayOptions opts;
  opts.reconnect_backoff = FromMillis(100);
  opts.reconnect_max_attempts = 2;
  OverlayFleet fleet = BuildOverlay(4, opts);
  ASSERT_EQ(fleet.JoinedCount(), 4u);
  int got = 0;
  fleet[1].set_on_direct([&](NodeId from, const MessagePtr& msg) {
    EXPECT_EQ(from, 0);
    EXPECT_EQ(dynamic_cast<AppMsg*>(msg.get())->value, 77);
    ++got;
  });
  fleet[0].SendDirect(1, std::make_shared<AppMsg>(77));
  fleet.sim->RunFor(FromSeconds(2));
  EXPECT_EQ(got, 1);

  // Now a permanently dead destination: failure callback after retries.
  int failed = 0;
  fleet[0].set_on_direct_failed([&](NodeId to, const MessagePtr&) {
    EXPECT_EQ(to, 2);
    ++failed;
  });
  fleet.sim->network().SetNodeUp(2, false);
  fleet[0].SendDirect(2, std::make_shared<AppMsg>(88));
  fleet.sim->RunFor(FromSeconds(30));
  EXPECT_EQ(failed, 1);
}

TEST(OverlayDirectTest, RetrySucceedsAfterTransientLinkFlap) {
  OverlayOptions opts;
  opts.reconnect_backoff = FromMillis(500);
  opts.reconnect_max_attempts = 8;
  OverlayFleet fleet = BuildOverlay(4, opts);
  ASSERT_EQ(fleet.JoinedCount(), 4u);
  int got = 0;
  fleet[1].set_on_direct([&](NodeId, const MessagePtr&) { ++got; });
  // 2-second outage; retries should push the message through afterwards.
  fleet.sim->network().SetLinkDown(0, 1, FromSeconds(2));
  fleet[0].SendDirect(1, std::make_shared<AppMsg>(5));
  fleet.sim->RunFor(FromSeconds(20));
  EXPECT_EQ(got, 1);
}

// ---------------------------------------------------------------- Replication

TEST(OverlayReplicationTest, TargetsMatchPrefixLevels) {
  OverlayFleet fleet = BuildOverlay(16, {});
  ASSERT_EQ(fleet.JoinedCount(), 16u);
  for (auto& node : fleet.nodes) {
    const BitCode& code = node->code();
    auto t1 = node->ReplicationTargets(1);
    ASSERT_GE(t1.size(), 1u);
    // Level-1 target shares exactly len-1 bits (the sibling side).
    const BitCode& c1 = node->peers().at(t1[0]);
    EXPECT_EQ(code.CommonPrefixLen(c1), code.length() - 1);

    auto t3 = node->ReplicationTargets(3);
    for (size_t lvl = 0; lvl < t3.size(); ++lvl) {
      const BitCode& c = node->peers().at(t3[lvl]);
      EXPECT_EQ(code.CommonPrefixLen(c),
                code.length() - 1 - static_cast<int>(lvl));
    }
    // All-peers mode.
    auto all = node->ReplicationTargets(-1);
    EXPECT_EQ(all.size(), node->peers().size());
  }
}

// ---------------------------------------------------------------- Failure

TEST(OverlayFailureTest, SiblingTakesOverFailedNode) {
  OverlayOptions opts;
  opts.heartbeat_interval = FromSeconds(2);
  opts.heartbeat_miss_limit = 3;
  OverlayFleet fleet = BuildOverlay(8, opts);
  ASSERT_EQ(fleet.JoinedCount(), 8u);

  // Find a node whose sibling exists as a node.
  int victim = -1, sibling = -1;
  for (size_t i = 0; i < fleet.size() && victim < 0; ++i) {
    BitCode sib = fleet[i].code().Sibling();
    for (size_t j = 0; j < fleet.size(); ++j) {
      if (j != i && fleet[j].code() == sib) {
        victim = static_cast<int>(i);
        sibling = static_cast<int>(j);
        break;
      }
    }
  }
  ASSERT_GE(victim, 0);
  BitCode victim_code = fleet[victim].code();
  BitCode parent = victim_code.Parent();

  int takeovers = 0;
  fleet[sibling].set_on_takeover([&](BitCode absorbed) {
    EXPECT_EQ(absorbed, victim_code);
    ++takeovers;
  });

  fleet[victim].Crash();
  fleet.sim->RunFor(FromSeconds(30));

  EXPECT_EQ(takeovers, 1);
  EXPECT_EQ(fleet[sibling].code(), parent);
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
}

TEST(OverlayFailureTest, RoutingSurvivesNodeFailure) {
  OverlayOptions opts;
  opts.heartbeat_interval = FromSeconds(2);
  opts.reconnect_backoff = FromMillis(250);
  opts.reconnect_max_attempts = 3;
  OverlayFleet fleet = BuildOverlay(16, opts, false, /*seed=*/11);
  ASSERT_EQ(fleet.JoinedCount(), 16u);

  fleet[5].Crash();
  fleet.sim->RunFor(FromSeconds(40));  // let failure detection converge

  Rng rng(13);
  int delivered = 0;
  const int kSends = 100;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver([&](NodeId, const MessagePtr&, int) { ++delivered; });
  }
  for (int i = 0; i < kSends; ++i) {
    BitCode target = BitCode::FromBits(rng.Next(), 64);
    size_t src;
    do {
      src = rng.Uniform(fleet.size());
    } while (static_cast<int>(src) == 5);
    fleet[src].Route(target, std::make_shared<AppMsg>(0));
  }
  fleet.sim->RunFor(FromSeconds(60));
  EXPECT_EQ(delivered, kSends);
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
}

TEST(OverlayFailureTest, RevivedNodeRejoins) {
  OverlayOptions opts;
  opts.heartbeat_interval = FromSeconds(2);
  OverlayFleet fleet = BuildOverlay(8, opts, false, /*seed=*/17);
  ASSERT_EQ(fleet.JoinedCount(), 8u);

  fleet[3].Crash();
  fleet.sim->RunFor(FromSeconds(30));
  EXPECT_TRUE(fleet.CodesFormCompleteCover());

  fleet[3].Revive(0);
  SimTime deadline = fleet.sim->now() + FromSeconds(120);
  while (!fleet[3].joined() && fleet.sim->now() < deadline) {
    fleet.sim->RunFor(FromSeconds(1));
  }
  EXPECT_TRUE(fleet[3].joined());
  EXPECT_TRUE(fleet.CodesFormCompleteCover());
}

TEST(OverlayFailureTest, MassFailureStillRoutesWithRecovery) {
  OverlayOptions opts;
  opts.heartbeat_interval = FromSeconds(2);
  opts.reconnect_backoff = FromMillis(250);
  opts.reconnect_max_attempts = 2;
  OverlayFleet fleet = BuildOverlay(32, opts, false, /*seed=*/23);
  ASSERT_EQ(fleet.JoinedCount(), 32u);

  // Kill ~15% of nodes (paper's robustness operating point).
  Rng rng(29);
  std::set<size_t> killed;
  while (killed.size() < 5) {
    size_t v = 1 + rng.Uniform(fleet.size() - 1);
    if (killed.insert(v).second) fleet[v].Crash();
  }
  fleet.sim->RunFor(FromSeconds(60));

  int delivered = 0;
  const int kSends = 200;
  for (auto& node : fleet.nodes) {
    node->set_on_deliver([&](NodeId, const MessagePtr&, int) { ++delivered; });
  }
  for (int i = 0; i < kSends; ++i) {
    BitCode target = BitCode::FromBits(rng.Next(), 64);
    size_t src;
    do {
      src = rng.Uniform(fleet.size());
    } while (killed.count(src));
    fleet[src].Route(target, std::make_shared<AppMsg>(0));
  }
  fleet.sim->RunFor(FromSeconds(120));
  // All regions are owned by live nodes after takeovers; routing should
  // succeed for nearly all messages (recovery may drop a few in transients).
  EXPECT_GE(delivered, kSends * 95 / 100);
}

}  // namespace
}  // namespace mind
