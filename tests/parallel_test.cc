// Tests for the sharded parallel engine and its determinism discipline:
// counter-based RNG streams, keyed event ordering, the dense link table,
// planned outages, sharded telemetry, and — the core property — bit-identical
// state digests across the sequential engine and every worker thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mind/mind_net.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/parallel_engine.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace mind {
namespace {

// ------------------------------------------------------------- counter RNG

TEST(CounterRngTest, PureFunctionOfInputs) {
  EXPECT_EQ(CounterMix(1, 2, 3), CounterMix(1, 2, 3));
  EXPECT_DOUBLE_EQ(CounterUniformDouble(7, 8, 9), CounterUniformDouble(7, 8, 9));
  EXPECT_DOUBLE_EQ(CounterLogNormal(7, 8, 9, -0.7, 1.0),
                   CounterLogNormal(7, 8, 9, -0.7, 1.0));
}

TEST(CounterRngTest, DistinctInputsDecorrelate) {
  std::set<uint64_t> seen;
  for (uint64_t c = 0; c < 4096; ++c) seen.insert(CounterMix(42, 7, c));
  EXPECT_EQ(seen.size(), 4096u);  // no collisions across counters
  EXPECT_NE(CounterMix(1, 2, 3), CounterMix(2, 2, 3));
  EXPECT_NE(CounterMix(1, 2, 3), CounterMix(1, 3, 3));
}

TEST(CounterRngTest, UniformLiesInUnitInterval) {
  for (uint64_t c = 0; c < 1000; ++c) {
    double u = CounterUniformDouble(0x5eed, 1, c);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(CounterRngTest, LogNormalMatchesParameters) {
  const double mu = -0.7, sigma = 1.0;
  const int n = 20000;
  double sum = 0, sum2 = 0;
  for (int c = 0; c < n; ++c) {
    double v = CounterLogNormal(0x5eed, 99, c, mu, sigma);
    ASSERT_GT(v, 0.0);
    double l = std::log(v);
    sum += l;
    sum2 += l * l;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, mu, 0.05);
  EXPECT_NEAR(std::sqrt(var), sigma, 0.05);
}

// ---------------------------------------------------------- keyed ordering

TEST(KeyedEventQueueTest, SameTimestampOrdersByBandThenUkey) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtKeyed(100, 2, 0, [&] { order.push_back(4); });
  q.ScheduleAtKeyed(100, 1, 7, [&] { order.push_back(3); });
  q.ScheduleAt(100, [&] { order.push_back(1); });  // band 0
  q.ScheduleAtKeyed(100, 1, 2, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(KeyedEventQueueTest, InsertionOrderIsFinalTieBreaker) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtKeyed(10, 1, 5, [&] { order.push_back(1); });
  q.ScheduleAtKeyed(10, 1, 5, [&] { order.push_back(2); });
  q.ScheduleAtKeyed(10, 1, 5, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(KeyedEventQueueTest, RunUntilBeforeIsHalfOpen) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  EXPECT_EQ(q.RunUntilBefore(20), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 10u);  // clock stays at the last fired event
  q.AdvanceTo(20);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.RunUntilBefore(21), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(KeyedEventQueueTest, CollectKeyedReportsLiveTriples) {
  EventQueue q;
  q.ScheduleAtKeyed(5, 1, 77, [] {});
  EventId dead = q.ScheduleAtKeyed(6, 2, 88, [] {});
  q.Cancel(dead);
  std::vector<std::array<uint64_t, 3>> keys;
  q.CollectKeyed(&keys);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (std::array<uint64_t, 3>{5, 1, 77}));
}

// ------------------------------------------------- network (dense links etc.)

struct PingMsg : Message {
  const char* TypeName() const override { return "ping"; }
};

struct TestHost : Host {
  std::vector<NodeId> delivered_from;
  std::vector<NodeId> failed_to;
  void HandleMessage(NodeId from, const MessagePtr&) override {
    delivered_from.push_back(from);
  }
  void HandleSendFailure(NodeId to, const MessagePtr&) override {
    failed_to.push_back(to);
  }
};

TEST(NetworkTest, DenseLinkStatsCountPerDirection) {
  Simulator sim;
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  NodeId ib = sim.network().AddHost(&b);
  for (int i = 0; i < 3; ++i) sim.network().Send(ia, ib, std::make_shared<PingMsg>());
  sim.network().Send(ib, ia, std::make_shared<PingMsg>());
  sim.Run();
  EXPECT_EQ(sim.network().GetLinkStats(ia, ib).messages, 3u);
  EXPECT_EQ(sim.network().GetLinkStats(ia, ib).bytes, 3u * 64u);
  EXPECT_EQ(sim.network().GetLinkStats(ib, ia).messages, 1u);
  EXPECT_EQ(a.delivered_from.size(), 1u);
  EXPECT_EQ(b.delivered_from.size(), 3u);
}

// Satellite: "overlapping SetLinkDown calls extend the outage" — the second
// call must stretch the window, not restart or shrink it.
TEST(NetworkTest, SetLinkDownOverlapExtendsOutage) {
  Simulator sim;
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  NodeId ib = sim.network().AddHost(&b);
  sim.network().SetLinkDown(ia, ib, 1000);
  sim.events().ScheduleAt(500, [&] { sim.network().SetLinkDown(ia, ib, 1000); });
  bool up_at_1200 = true, up_at_1400 = true, up_at_1600 = false;
  sim.events().ScheduleAt(1200, [&] { up_at_1200 = sim.network().IsLinkUp(ia, ib); });
  sim.events().ScheduleAt(1400, [&] { up_at_1400 = sim.network().IsLinkUp(ia, ib); });
  sim.events().ScheduleAt(1600, [&] { up_at_1600 = sim.network().IsLinkUp(ia, ib); });
  sim.Run();
  EXPECT_FALSE(up_at_1200);  // inside the extended window
  EXPECT_FALSE(up_at_1400);  // would be up had the second call not extended
  EXPECT_TRUE(up_at_1600);
  // A shorter overlapping call must never shrink the outage.
  sim.network().SetLinkDown(ia, ib, 1000);
  sim.network().SetLinkDown(ia, ib, 10);
  EXPECT_FALSE(sim.network().IsLinkUp(ia, ib));
  sim.RunFor(500);
  EXPECT_FALSE(sim.network().IsLinkUp(ia, ib));
  sim.RunFor(600);
  EXPECT_TRUE(sim.network().IsLinkUp(ia, ib));
}

// Satellite: destination dies while the message is in flight — the sender
// must get HandleSendFailure (its TCP connection resets), not silence.
TEST(NetworkTest, InFlightLossNotifiesSenderLegacy) {
  Simulator sim;
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  NodeId ib = sim.network().AddHost(&b);
  sim.network().Send(ia, ib, std::make_shared<PingMsg>());
  // Default latency is 20 ms; kill the destination at 5 ms, mid-flight.
  sim.events().ScheduleAt(FromMillis(5), [&] { sim.network().SetNodeUp(ib, false); });
  sim.Run();
  EXPECT_TRUE(b.delivered_from.empty());
  ASSERT_EQ(a.failed_to.size(), 1u);
  EXPECT_EQ(a.failed_to[0], ib);
}

TEST(NetworkTest, InFlightLossNotifiesSenderDiscipline) {
  SimulatorOptions opts;
  opts.deterministic_discipline = true;
  Simulator sim(opts);
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  NodeId ib = sim.network().AddHost(&b);
  // The planned outage covers the arrival (~20 ms), so the in-flight loss is
  // resolved at send time from the plan.
  sim.network().PlanNodeOutage(ib, FromMillis(5), FromMillis(5000));
  sim.network().Send(ia, ib, std::make_shared<PingMsg>());
  sim.Run();
  EXPECT_TRUE(b.delivered_from.empty());
  ASSERT_EQ(a.failed_to.size(), 1u);
  EXPECT_EQ(a.failed_to[0], ib);
}

TEST(NetworkTest, PlannedOutageLivenessWindows) {
  SimulatorOptions opts;
  opts.deterministic_discipline = true;
  Simulator sim(opts);
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  NodeId ib = sim.network().AddHost(&b);
  sim.network().PlanNodeOutage(ib, 100, 200);
  EXPECT_TRUE(sim.network().IsNodeUpAt(ib, 99));
  EXPECT_FALSE(sim.network().IsNodeUpAt(ib, 100));
  EXPECT_FALSE(sim.network().IsNodeUpAt(ib, 199));
  EXPECT_TRUE(sim.network().IsNodeUpAt(ib, 200));
  sim.network().PlanLinkOutage(ia, ib, 300, 400);
  EXPECT_TRUE(sim.network().IsLinkUpAt(ia, ib, 299));
  EXPECT_FALSE(sim.network().IsLinkUpAt(ib, ia, 350));  // both directions
  EXPECT_TRUE(sim.network().IsLinkUpAt(ia, ib, 400));
}

// Phase-safety contract (tools/analyze rule phase-safety): world-state
// mutators must refuse to run while shard workers execute. SetDelayObserver
// was an unguarded mutation path; this pins the guard added with the rule.
TEST(NetworkDeathTest, SetDelayObserverDuringParallelPhaseAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run = [] {
    SimulatorOptions opts;
    opts.threads = 2;
    Simulator sim(opts);
    TestHost a, b;
    sim.network().AddHost(&a);
    sim.network().AddHost(&b);
    sim.ScheduleOn(0, 100, [&sim] {
      sim.network().SetDelayObserver([](NodeId, NodeId, SimTime) {});
    });
    sim.Run();
  };
  EXPECT_DEATH(run(), "SetDelayObserver during a parallel phase");
}

// --------------------------------------------------------- parallel engine

// A ping-pong fleet: every host forwards each received message to the next
// host until its hop budget is spent, logging (from, virtual time) locally.
struct RelayHost : Host {
  Simulator* sim = nullptr;
  NodeId id = kInvalidNode;
  int remaining = 0;
  size_t fleet = 0;
  std::vector<std::pair<NodeId, SimTime>> log;

  void HandleMessage(NodeId from, const MessagePtr& msg) override {
    log.emplace_back(from, sim->queue_for(id)->now());
    if (remaining-- <= 0) return;
    NodeId next = static_cast<NodeId>((id + 1) % static_cast<NodeId>(fleet));
    sim->network().Send(id, next, msg);
  }
};

// Runs the relay workload and returns every host's delivery log.
std::vector<std::vector<std::pair<NodeId, SimTime>>> RunRelay(
    int threads, ExecutorPolicy policy = ExecutorPolicy::kDynamic) {
  SimulatorOptions opts;
  opts.deterministic_discipline = threads == 0;
  opts.threads = threads;
  opts.executor_policy = policy;
  Simulator sim(opts);
  const size_t kFleet = 12;
  std::vector<std::unique_ptr<RelayHost>> hosts;
  for (size_t i = 0; i < kFleet; ++i) {
    auto h = std::make_unique<RelayHost>();
    h->sim = &sim;
    h->fleet = kFleet;
    h->remaining = 40;
    h->id = sim.network().AddHost(h.get());
    hosts.push_back(std::move(h));
  }
  for (size_t i = 0; i < kFleet; i += 3) {
    NodeId src = static_cast<NodeId>(i);
    sim.ScheduleOn(src, 1000 + i, [&sim, src] {
      sim.network().Send(src, (src + 5) % 12, std::make_shared<PingMsg>());
    });
  }
  sim.Run();
  std::vector<std::vector<std::pair<NodeId, SimTime>>> logs;
  for (auto& h : hosts) logs.push_back(h->log);
  return logs;
}

TEST(ParallelEngineTest, RelayIdenticalAcrossEnginesAndThreadCounts) {
  auto serial = RunRelay(0);  // sequential engine, discipline on
  size_t delivered = 0;
  for (const auto& log : serial) delivered += log.size();
  EXPECT_GT(delivered, 100u);  // the workload actually ran
  EXPECT_EQ(serial, RunRelay(1));
  EXPECT_EQ(serial, RunRelay(2));
  EXPECT_EQ(serial, RunRelay(4));
}

// Every executor policy at every thread count executes the identical
// computation: shard-to-executor mapping is pure wall-clock policy.
TEST(ParallelEngineTest, RelayIdenticalAcrossExecutorPolicies) {
  auto serial = RunRelay(0);
  for (ExecutorPolicy policy :
       {ExecutorPolicy::kStatic, ExecutorPolicy::kDynamic,
        ExecutorPolicy::kStealing}) {
    for (int threads : {1, 2, 4, 8}) {
      EXPECT_EQ(serial, RunRelay(threads, policy))
          << "policy=" << static_cast<int>(policy) << " threads=" << threads;
    }
  }
}

TEST(ParallelEngineTest, ShardPartitionIsThreadCountIndependent) {
  SimulatorOptions opts;
  opts.threads = 3;
  Simulator sim(opts);
  ParallelEngine* eng = sim.parallel_engine();
  ASSERT_NE(eng, nullptr);
  const int shards = ParallelEngine::DefaultShardCount();
  EXPECT_EQ(eng->shard_count(), shards);
  EXPECT_GE(shards, ParallelEngine::kDefaultShards);
  EXPECT_LE(shards, ParallelEngine::kMaxAutoShards);
  EXPECT_EQ(eng->threads(), 3);
  for (NodeId id = 0; id < 32; ++id) {
    EXPECT_EQ(eng->ShardOf(id), static_cast<int>(id) % shards);
    EXPECT_EQ(sim.queue_for(id), &eng->shard_queue(eng->ShardOf(id)));
  }
  EXPECT_EQ(ParallelEngine::current_shard(), -1);  // serial context
}

// Pinning an explicit shard count still works and digests are identical to
// the automatic partition (ordering keys are engine-independent, so the
// shard partition never leaks into results).
TEST(ParallelEngineTest, RelayIdenticalAcrossShardCounts) {
  auto serial = RunRelay(0);
  for (int shards : {4, 8, 16}) {
    SimulatorOptions opts;
    opts.threads = 2;
    opts.shards = shards;
    Simulator sim(opts);
    const size_t kFleet = 12;
    std::vector<std::unique_ptr<RelayHost>> hosts;
    for (size_t i = 0; i < kFleet; ++i) {
      auto h = std::make_unique<RelayHost>();
      h->sim = &sim;
      h->fleet = kFleet;
      h->remaining = 40;
      h->id = sim.network().AddHost(h.get());
      hosts.push_back(std::move(h));
    }
    for (size_t i = 0; i < kFleet; i += 3) {
      NodeId src = static_cast<NodeId>(i);
      sim.ScheduleOn(src, 1000 + i, [&sim, src] {
        sim.network().Send(src, (src + 5) % 12, std::make_shared<PingMsg>());
      });
    }
    sim.Run();
    std::vector<std::vector<std::pair<NodeId, SimTime>>> logs;
    for (auto& h : hosts) logs.push_back(h->log);
    EXPECT_EQ(serial, logs) << "shards=" << shards;
  }
}

TEST(ParallelEngineTest, RunUntilAlignsAllShardClocks) {
  SimulatorOptions opts;
  opts.threads = 2;
  Simulator sim(opts);
  TestHost a, b;
  NodeId ia = sim.network().AddHost(&a);
  sim.network().AddHost(&b);
  int fired = 0;
  sim.ScheduleOn(ia, FromMillis(3), [&] { ++fired; });
  sim.RunUntil(FromSeconds(1));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), FromSeconds(1));
  ParallelEngine* eng = sim.parallel_engine();
  for (int s = 0; s < eng->shard_count(); ++s) {
    EXPECT_EQ(eng->shard_queue(s).now(), FromSeconds(1));
  }
}

// ------------------------------------------------ MindNet digest identity

IndexDef ParallelIndexDef() {
  IndexDef def;
  def.name = "par_idx";
  def.schema = Schema({{"x", 0, 9999}, {"ts", 0, UINT64_MAX}, {"y", 0, 9999}});
  def.carried = {"payload"};
  def.time_attr = 1;
  return def;
}

Tuple ParallelTuple(Rng* rng, size_t fleet, uint64_t seq) {
  Tuple t;
  t.point = {rng->Uniform(10000), 1000 + seq, rng->Uniform(10000)};
  t.extra = {seq};
  t.origin = static_cast<int>(rng->Uniform(fleet));
  t.seq = seq;
  return t;
}

struct MindRunResult {
  uint64_t digest = 0;
  size_t stored = 0;
  size_t tuples = 0;
  std::vector<SimTime> latencies;  // merged commit order
  // Virtual-time window trace (thread-count and policy independent).
  uint64_t windows = 0;
  uint64_t events = 0;
  uint64_t exchanged = 0;
  uint64_t widened_windows = 0;
  uint64_t max_multiplier = 0;
};

// A small end-to-end MIND deployment: build, index, inserts, settling — then
// the state digest. `threads == 0` is the sequential engine under the
// discipline; anything else the sharded parallel engine.
MindRunResult RunMindWorkload(int threads, bool with_failures,
                              ExecutorPolicy policy = ExecutorPolicy::kDynamic) {
  MindNetOptions opts;
  opts.sim.seed = 0xfeed;
  opts.sim.threads = threads;
  opts.sim.executor_policy = policy;
  opts.sim.deterministic_discipline = threads == 0;
  if (with_failures) {
    opts.sim.failures.link_flaps_per_pair_hour = 2.0;
    opts.sim.failures.node_crashes_per_hour = 0.0;  // planned blackouts only
  }
  const size_t kFleet = 16;
  MindNet net(kFleet, opts);
  EXPECT_TRUE(net.Build().ok());
  IndexDef def = ParallelIndexDef();
  EXPECT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)),
                     1, 0)
                  .ok());
  if (with_failures) net.sim().failures().Start(FromSeconds(120));
  Rng rng(7);
  for (uint64_t i = 0; i < 120; ++i) {
    Tuple t = ParallelTuple(&rng, kFleet, i);
    size_t src = rng.Uniform(kFleet);
    EXPECT_TRUE(net.node(src).Insert("par_idx", std::move(t)).ok());
    net.sim().RunFor(FromMillis(40));
  }
  net.sim().RunFor(FromSeconds(60));
  MindRunResult r;
  r.digest = net.StateDigest();
  r.stored = net.stored().size();
  r.tuples = net.TotalPrimaryTuples("par_idx");
  for (const auto& info : net.stored()) r.latencies.push_back(info.latency);
  if (const EngineStats* st = net.sim().engine_stats()) {
    r.windows = st->windows;
    r.events = st->events;
    r.exchanged = st->exchanged;
    r.widened_windows = st->widened_windows;
    r.max_multiplier = st->max_multiplier;
  }
  return r;
}

TEST(ParallelEngineTest, MindNetDigestIdenticalAcrossThreadCounts) {
  MindRunResult serial = RunMindWorkload(0, false);
  EXPECT_EQ(serial.stored, 120u);
  EXPECT_EQ(serial.tuples, 120u);
  for (int threads : {1, 2, 4}) {
    MindRunResult par = RunMindWorkload(threads, false);
    EXPECT_EQ(par.digest, serial.digest) << "threads=" << threads;
    EXPECT_EQ(par.stored, serial.stored) << "threads=" << threads;
    EXPECT_EQ(par.tuples, serial.tuples) << "threads=" << threads;
    EXPECT_EQ(par.latencies, serial.latencies) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, MindNetDigestIdenticalUnderPlannedFailures) {
  MindRunResult serial = RunMindWorkload(0, true);
  for (int threads : {2, 4}) {
    MindRunResult par = RunMindWorkload(threads, true);
    EXPECT_EQ(par.digest, serial.digest) << "threads=" << threads;
    EXPECT_EQ(par.latencies, serial.latencies) << "threads=" << threads;
  }
}

// Full policy × thread-count matrix against the sequential digest, with
// planned link flaps active — outages reshape cross-shard traffic mid-run,
// so this exercises the adaptive cap and the lookahead-matrix refresh under
// every executor.
TEST(ParallelEngineTest, MindNetDigestIdenticalAcrossExecutorPolicies) {
  MindRunResult serial = RunMindWorkload(0, true);
  for (ExecutorPolicy policy :
       {ExecutorPolicy::kStatic, ExecutorPolicy::kDynamic,
        ExecutorPolicy::kStealing}) {
    for (int threads : {1, 2, 4, 8}) {
      MindRunResult par = RunMindWorkload(threads, true, policy);
      EXPECT_EQ(par.digest, serial.digest)
          << "policy=" << static_cast<int>(policy) << " threads=" << threads;
      EXPECT_EQ(par.latencies, serial.latencies)
          << "policy=" << static_cast<int>(policy) << " threads=" << threads;
    }
  }
}

// The adaptive lookahead must be a function of the committed simulation
// alone: the window trace (count, events, exchange volume, widening
// decisions) is bit-identical across thread counts, executor policies, and
// repeat runs. A wall-clock-driven or racy cap would diverge here.
TEST(ParallelEngineTest, AdaptiveLookaheadIsDeterministic) {
  MindRunResult base = RunMindWorkload(2, false);
  EXPECT_GT(base.windows, 0u);
  EXPECT_GT(base.events, 0u);
  // The workload has long settle phases, so widening must actually engage.
  EXPECT_GT(base.widened_windows, 0u);
  EXPECT_GT(base.max_multiplier, 1u);

  // Repeat run: identical trace.
  MindRunResult again = RunMindWorkload(2, false);
  EXPECT_EQ(again.windows, base.windows);
  EXPECT_EQ(again.events, base.events);
  EXPECT_EQ(again.exchanged, base.exchanged);
  EXPECT_EQ(again.widened_windows, base.widened_windows);
  EXPECT_EQ(again.max_multiplier, base.max_multiplier);

  // Different thread counts and policies: same virtual-time window trace.
  for (int threads : {1, 4}) {
    MindRunResult par = RunMindWorkload(threads, false);
    EXPECT_EQ(par.windows, base.windows) << "threads=" << threads;
    EXPECT_EQ(par.exchanged, base.exchanged) << "threads=" << threads;
    EXPECT_EQ(par.widened_windows, base.widened_windows)
        << "threads=" << threads;
    EXPECT_EQ(par.max_multiplier, base.max_multiplier)
        << "threads=" << threads;
  }
  MindRunResult stealing =
      RunMindWorkload(2, false, ExecutorPolicy::kStealing);
  EXPECT_EQ(stealing.windows, base.windows);
  EXPECT_EQ(stealing.exchanged, base.exchanged);
  EXPECT_EQ(stealing.widened_windows, base.widened_windows);
  EXPECT_EQ(stealing.max_multiplier, base.max_multiplier);
}

TEST(ParallelEngineTest, ValidatorsRunAtBarriers) {
  MindNetOptions opts;
  opts.sim.seed = 0xfeed;
  opts.sim.threads = 2;
  MindNet net(8, opts);
  net.EnablePeriodicValidation(FromSeconds(1));
  EXPECT_TRUE(net.Build().ok());
  EXPECT_TRUE(net.ValidateInvariants().ok());
}

// ------------------------------------------------------- sharded telemetry

#ifndef MIND_TELEMETRY_DISABLED
TEST(ShardedTelemetryTest, CounterAggregatesAcrossSlots) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("c");
  c.Inc(2);  // recorded before sharding: lands in the base value
  reg.EnableSharding(4);
  telemetry::SetShardSlot(1);
  c.Inc(10);
  telemetry::SetShardSlot(3);
  c.Inc(5);
  telemetry::SetShardSlot(0);
  c.Inc(1);
  EXPECT_EQ(c.value(), 18u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
  // Instruments created after EnableSharding are sharded too.
  telemetry::Counter& late = reg.counter("late");
  telemetry::SetShardSlot(2);
  late.Inc(3);
  telemetry::SetShardSlot(0);
  EXPECT_EQ(late.value(), 3u);
}

TEST(ShardedTelemetryTest, HistogramAggregatesAcrossSlots) {
  telemetry::MetricsRegistry reg;
  reg.EnableSharding(3);
  telemetry::SimHistogram& h = reg.histogram("h");
  telemetry::SetShardSlot(1);
  h.Record(1.0);
  h.Record(2.0);
  telemetry::SetShardSlot(2);
  h.Record(100.0);
  telemetry::SetShardSlot(0);
  h.Record(10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 113.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.Mean(), 113.0 / 4, 1e-9);
  double p50 = h.Percentile(50);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 100.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}
#endif  // MIND_TELEMETRY_DISABLED

}  // namespace
}  // namespace mind
