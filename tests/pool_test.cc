// Tests for the bounded-memory allocators (util/arena.h, DESIGN.md §14):
// the size-class pool (pool::Allocate / pool::Deallocate, thread caches and
// the retired-cache depot) and the epoch-reclaimed Arena. The CI sanitizer
// job runs this suite under ASan+UBSan: block recycling, cross-thread frees
// and depot adoption are exactly the paths where a lifetime bug would hide.
#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"

namespace mind {
namespace {

using pool::GatherStats;
using pool::kClassSizes;
using pool::kMaxPooledBytes;
using pool::Stats;

TEST(PoolTest, RoundTripRecyclesFreedBlocks) {
  const Stats before = GatherStats();
  void* p = pool::Allocate(64);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 64);
  pool::Deallocate(p, 64);
  // LIFO free list: the very next same-class allocation reuses the block.
  void* q = pool::Allocate(64);
  EXPECT_EQ(q, p);
  pool::Deallocate(q, 64);

  const Stats after = GatherStats();
  EXPECT_EQ(after.allocs, before.allocs + 2);
  EXPECT_EQ(after.frees, before.frees + 2);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(PoolTest, RequestsRoundUpToTheirSizeClass) {
  const Stats before = GatherStats();
  // 100 bytes lands in the 128-byte class; live accounting uses the class
  // size, not the request size.
  void* p = pool::Allocate(100);
  const Stats mid = GatherStats();
  EXPECT_EQ(mid.live_bytes - before.live_bytes, 128);
  pool::Deallocate(p, 100);
  EXPECT_EQ(GatherStats().live_bytes, before.live_bytes);
}

TEST(PoolTest, EveryClassBoundaryAllocates) {
  for (size_t cls : kClassSizes) {
    void* p = pool::Allocate(cls);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
    std::memset(p, 0x5c, cls);
    pool::Deallocate(p, cls);
  }
}

TEST(PoolTest, ZeroByteRequestIsServed) {
  void* p = pool::Allocate(0);
  ASSERT_NE(p, nullptr);
  pool::Deallocate(p, 0);
}

TEST(PoolTest, OversizeFallsBackToHeapAndIsCounted) {
  const size_t n = kMaxPooledBytes + 1;
  const Stats before = GatherStats();
  void* p = pool::Allocate(n);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x17, n);
  const Stats mid = GatherStats();
  EXPECT_EQ(mid.oversize_allocs, before.oversize_allocs + 1);
  EXPECT_EQ(mid.oversize_bytes, before.oversize_bytes + n);
  // Oversize traffic bypasses the pools entirely: no live-byte movement.
  EXPECT_EQ(mid.live_bytes, before.live_bytes);
  pool::Deallocate(p, n);
}

TEST(PoolTest, PeakTracksHighWaterAndResets) {
  pool::ResetPeak();
  const Stats base = GatherStats();
  std::vector<void*> blocks;
  for (int i = 0; i < 32; ++i) blocks.push_back(pool::Allocate(256));
  const Stats loaded = GatherStats();
  EXPECT_GE(loaded.peak_bytes, base.live_bytes + 32 * 256);
  for (void* p : blocks) pool::Deallocate(p, 256);
  // Peak survives the frees until explicitly reset to the live volume.
  EXPECT_GE(GatherStats().peak_bytes, loaded.peak_bytes);
  pool::ResetPeak();
  const Stats reset = GatherStats();
  EXPECT_EQ(reset.peak_bytes, reset.live_bytes);
}

TEST(PoolTest, CrossThreadFreeMigratesToTheFreeingCache) {
  const Stats before = GatherStats();
  void* p = pool::Allocate(64);
  std::memset(p, 0x42, 64);
  std::thread t([p] { pool::Deallocate(p, 64); });
  t.join();
  const Stats after = GatherStats();
  EXPECT_EQ(after.frees, before.frees + 1);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(PoolTest, RetiredCacheDonatesBlocksToTheNextThread) {
  // Thread 1 allocates and frees, then exits: its free list and slabs land
  // in the depot.
  std::thread t1([] {
    void* p = pool::Allocate(512);
    std::memset(p, 0x33, 512);
    pool::Deallocate(p, 512);
  });
  t1.join();

  // Thread 2 adopts the donated state: serving the same class again must not
  // reserve any new slab memory.
  const Stats before = GatherStats();
  std::thread t2([] {
    void* p = pool::Allocate(512);
    std::memset(p, 0x44, 512);
    pool::Deallocate(p, 512);
  });
  t2.join();
  const Stats after = GatherStats();
  EXPECT_EQ(after.slab_bytes, before.slab_bytes);
  EXPECT_EQ(after.allocs, before.allocs + 1);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(PoolTest, PooledAllocatorDrivesStdContainers) {
  std::vector<int, pool::PooledAllocator<int>> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i * 3);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);

  struct Payload {
    uint64_t a;
    uint64_t b;
  };
  auto sp = std::allocate_shared<Payload>(pool::PooledAllocator<Payload>(),
                                          Payload{7, 9});
  EXPECT_EQ(sp->a, 7u);
  EXPECT_EQ(sp->b, 9u);
}

TEST(ArenaTest, BumpAllocationIsAlignedAndAccounted) {
  Arena arena(4096);
  void* a = arena.Allocate(10);
  void* b = arena.Allocate(10);
  ASSERT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(std::max_align_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(std::max_align_t), 0u);
  // Both 10-byte requests round up to max_align_t strides.
  EXPECT_EQ(arena.live_bytes(), 2 * ((10 + alignof(std::max_align_t) - 1) &
                                     ~(alignof(std::max_align_t) - 1)));

  struct Pt {
    int x;
    int y;
  };
  Pt* p = arena.New<Pt>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(ArenaTest, ResetReclaimsTheEpochWithoutReleasingChunks) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  const size_t reserved = arena.reserved_bytes();
  EXPECT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  // The second epoch walks the retained chunks: same pattern, no growth.
  for (int i = 0; i < 100; ++i) arena.Allocate(64);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsADedicatedChunk) {
  Arena arena(1024);
  void* p = arena.Allocate(64 * 1024);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x1f, 64 * 1024);
  EXPECT_GE(arena.reserved_bytes(), 64u * 1024);
  arena.Reset();
  // The oversized chunk is retained like any other.
  EXPECT_GE(arena.reserved_bytes(), 64u * 1024);
}

TEST(ArenaTest, PeakPersistsAcrossReset) {
  Arena arena(1024);
  arena.Allocate(512);
  arena.Allocate(512);
  const size_t peak = arena.peak_bytes();
  EXPECT_GE(peak, 1024u);
  arena.Reset();
  EXPECT_EQ(arena.peak_bytes(), peak);
  EXPECT_EQ(arena.live_bytes(), 0u);
}

}  // namespace
}  // namespace mind
