#include <gtest/gtest.h>

#include "mind/query_tracker.h"

namespace mind {
namespace {

Schema TwoDim() { return Schema({{"x", 0, 999}, {"y", 0, 999}}); }

CutTreeRef Cuts() {
  return std::make_shared<CutTree>(CutTree::Even(TwoDim()));
}

Tuple T(uint64_t seq, int origin = 0) {
  Tuple t;
  t.point = {1, 1};
  t.origin = origin;
  t.seq = seq;
  return t;
}

TEST(QueryTrackerTest, SingleReplyCoveringRootCompletes) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  EXPECT_FALSE(tracker.IsComplete());
  tracker.AddReply(3, BitCode(), {T(1)});
  EXPECT_TRUE(tracker.IsComplete());
  EXPECT_EQ(tracker.tuples().size(), 1u);
  EXPECT_EQ(tracker.responders().count(3), 1u);
}

TEST(QueryTrackerTest, BothChildrenNeededWhenQueryStraddles) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  tracker.AddReply(1, BitCode::FromString("0"), {});
  EXPECT_FALSE(tracker.IsComplete()) << "half the space is unanswered";
  tracker.AddReply(2, BitCode::FromString("1"), {});
  EXPECT_TRUE(tracker.IsComplete());
}

TEST(QueryTrackerTest, NonIntersectingBranchesAreVacuouslyCovered) {
  // Query confined to the low-x half: only the "0" branch needs replies.
  Rect q({{0, 100}, {0, 999}});
  QueryTracker tracker(q, BitCode::FromString("0"), Cuts(), 16);
  tracker.AddReply(1, BitCode::FromString("0"), {T(1)});
  EXPECT_TRUE(tracker.IsComplete());
}

TEST(QueryTrackerTest, DeepSplitsAssembleCoverage) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  // Replies at mixed depths: 00, 01, 1 cover everything.
  tracker.AddReply(1, BitCode::FromString("00"), {});
  tracker.AddReply(2, BitCode::FromString("01"), {});
  EXPECT_FALSE(tracker.IsComplete());
  tracker.AddReply(3, BitCode::FromString("1"), {});
  EXPECT_TRUE(tracker.IsComplete());
}

TEST(QueryTrackerTest, SupplementalRepliesNeverComplete) {
  // Regression guard at the unit level: non-authoritative replies merge
  // tuples but must not cover regions (see EXPERIMENTS.md findings).
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  tracker.AddReply(1, BitCode(), {T(1)}, /*authoritative=*/false);
  EXPECT_FALSE(tracker.IsComplete());
  EXPECT_EQ(tracker.tuples().size(), 1u);  // but the data is kept
  tracker.AddReply(2, BitCode(), {}, /*authoritative=*/true);
  EXPECT_TRUE(tracker.IsComplete());
}

TEST(QueryTrackerTest, DuplicateTuplesFromReplicasDeduplicated) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  tracker.AddReply(1, BitCode::FromString("0"), {T(7, 2), T(8, 2)});
  tracker.AddReply(2, BitCode::FromString("1"), {T(7, 2)});  // replica copy
  EXPECT_EQ(tracker.tuples().size(), 2u);
  // Same seq from a different origin is a distinct tuple.
  tracker.AddReply(3, BitCode::FromString("1"), {T(7, 5)});
  EXPECT_EQ(tracker.tuples().size(), 3u);
}

TEST(QueryTrackerTest, PositiveRespondersTracked) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  tracker.AddReply(1, BitCode::FromString("0"), {});        // negative
  tracker.AddReply(2, BitCode::FromString("1"), {T(1)});    // positive
  EXPECT_EQ(tracker.responders().size(), 2u);
  EXPECT_EQ(tracker.positive_responders().size(), 1u);
  EXPECT_EQ(tracker.positive_responders().count(2), 1u);
}

TEST(QueryTrackerTest, ParentReplySubsumesChildGaps) {
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 16);
  tracker.AddReply(1, BitCode::FromString("00"), {});
  // A later, shallower reply ("0") covers the sibling "01" too.
  tracker.AddReply(2, BitCode::FromString("0"), {});
  tracker.AddReply(3, BitCode::FromString("1"), {});
  EXPECT_TRUE(tracker.IsComplete());
}

TEST(QueryTrackerTest, IncompleteWideQueryStaysIncomplete) {
  // Missing one deep region keeps the tracker (and thus the query) open.
  Rect q({{0, 999}, {0, 999}});
  QueryTracker tracker(q, BitCode(), Cuts(), 8);
  tracker.AddReply(1, BitCode::FromString("0"), {});
  tracker.AddReply(2, BitCode::FromString("10"), {});
  tracker.AddReply(3, BitCode::FromString("110"), {});
  EXPECT_FALSE(tracker.IsComplete());  // "111" unanswered
  tracker.AddReply(4, BitCode::FromString("111"), {});
  EXPECT_TRUE(tracker.IsComplete());
}

}  // namespace
}  // namespace mind
