// Regression tests for defects found (and fixed) while reproducing the
// paper's experiments. Each test pins the failure mode described in
// EXPERIMENTS.md §"Findings".
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "mind/mind_net.h"
#include "space/cut_tree.h"
#include "traffic/indices.h"

namespace mind {
namespace {

// ---------------------------------------------------------------- network

TEST(NetworkOrderingTest, HeavyJitterNeverReordersALink) {
  // The join protocol assumes TCP's in-order delivery; the simulated link
  // must keep FIFO order no matter how heavy the jitter tail is.
  struct SeqMsg : Message {
    explicit SeqMsg(int s) : seq(s) {}
    int seq;
    const char* TypeName() const override { return "Seq"; }
  };
  struct SeqHost : Host {
    std::vector<int> got;
    void HandleMessage(NodeId, const MessagePtr& m) override {
      got.push_back(dynamic_cast<SeqMsg*>(m.get())->seq);
    }
  };
  EventQueue q;
  NetworkOptions opts;
  opts.jitter_mu_ln_ms = 5.0;   // ~150 ms median
  opts.jitter_sigma_ln = 2.0;   // wild tail: raw delays would reorder badly
  Network net(&q, opts);
  SeqHost a, b;
  net.AddHost(&a);
  net.AddHost(&b);
  for (int i = 0; i < 200; ++i) {
    net.Send(0, 1, std::make_shared<SeqMsg>(i));
  }
  q.Run();
  ASSERT_EQ(b.got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(b.got[i], i);
}

// ---------------------------------------------------------------- cut tree

TEST(BalancedCutRegressionTest, SubCellDataStillSplits) {
  // A day of timestamps spans less than one histogram cell of a 14-day
  // domain. Median-of-cell-centers used to put ALL live data on one side of
  // every time cut; interpolation within the cell must split it.
  Schema s({{"ts", 0, 14 * 86400ull}, {"v", 0, 1000}});
  Histogram h(s, 16);  // ts cell width = 75600 s > the 3600 s data range
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({86400 + rng.Uniform(3600), rng.Uniform(1001)});
    h.Add(pts.back());
  }
  auto tree = CutTree::Balanced(s, h, 6);
  ASSERT_TRUE(tree.ok());
  // Count side-1 fractions per level: no level may send everything one way.
  for (int lvl = 0; lvl < 4; ++lvl) {
    int ones = 0;
    for (const auto& p : pts) {
      if (tree->CodeForPoint(p, lvl + 1).bit(lvl)) ++ones;
    }
    double frac = static_cast<double>(ones) / static_cast<double>(pts.size());
    EXPECT_GT(frac, 0.02) << "level " << lvl << " is degenerate";
    EXPECT_LT(frac, 0.98) << "level " << lvl << " is degenerate";
  }
}

TEST(BalancedCutRegressionTest, DegenerateDimensionIsSkipped) {
  // One attribute is a constant; round-robin cutting must not burn levels
  // on it (they would halve the usable region count).
  Schema s({{"constant", 5, 5}, {"x", 0, 100000}});
  Histogram h(s, 32);
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({5, rng.Uniform(100001)});
    h.Add(pts.back());
  }
  auto tree = CutTree::Balanced(s, h, 5);
  ASSERT_TRUE(tree.ok());
  std::set<std::string> codes;
  for (const auto& p : pts) codes.insert(tree->CodeForPoint(p, 5).ToString());
  // With a useless dimension skipped, the 5 cuts land on x and produce
  // (nearly) 32 populated regions; the old behaviour produced <= 8.
  EXPECT_GE(codes.size(), 24u);
}

// ---------------------------------------------------------------- mind

IndexDef SmallDef() {
  IndexDef def;
  def.name = "reg";
  def.schema = Schema({{"x", 0, 9999}, {"ts", 0, UINT64_MAX}, {"y", 0, 9999}});
  def.time_attr = 1;
  return def;
}

TEST(QueryCompletionRegressionTest, SupplementalRepliesDoNotCompleteQueries) {
  // Late joiners forward resolve-only copies to their split parent (§3.4).
  // Those supplementary (often empty) replies must not mark regions covered,
  // or they race the owner's real reply and the query "completes" with
  // missing data. Build a net with a late joiner, load the owner regions,
  // and verify every query returns the full answer.
  MindNetOptions opts;
  opts.sim.seed = 4242;
  MindNet net(10, opts);
  net.node(0).BecomeFirst();
  for (size_t i = 1; i < 9; ++i) {
    net.node(i).Join(0);
    net.sim().RunFor(FromSeconds(3));
  }
  ASSERT_EQ(net.JoinedCount(), 9u);
  IndexDef def = SmallDef();
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)))
                  .ok());
  Rng rng(7);
  std::vector<Tuple> all;
  for (int i = 0; i < 300; ++i) {
    Tuple t;
    t.point = {rng.Uniform(10000), static_cast<Value>(1000 + i),
               rng.Uniform(10000)};
    t.origin = static_cast<int>(i % 9);
    t.seq = i;
    all.push_back(t);
    ASSERT_TRUE(net.node(i % 9).Insert("reg", t).ok());
    if (i % 40 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(30));

  // Node 9 joins late: every resolve at node 9's region now also generates a
  // supplemental forward to its parent.
  net.node(9).Join(0);
  SimTime deadline = net.sim().now() + FromSeconds(120);
  while (net.JoinedCount() < 10 && net.sim().now() < deadline) {
    net.sim().RunFor(FromSeconds(1));
  }
  ASSERT_EQ(net.JoinedCount(), 10u);
  net.sim().RunFor(FromSeconds(5));

  for (int iter = 0; iter < 15; ++iter) {
    Value a = rng.Uniform(10000), b = rng.Uniform(10000);
    Rect q({{std::min(a, b), std::max(a, b)}, {0, UINT64_MAX}, {0, 9999}});
    std::optional<QueryResult> res;
    auto qid = net.node(iter % 10).Query("reg", q,
                                         [&](const QueryResult& r) { res = r; });
    ASSERT_TRUE(qid.ok());
    SimTime qdeadline = net.sim().now() + FromSeconds(90);
    while (!res && net.sim().now() < qdeadline) net.sim().RunFor(FromMillis(200));
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(res->complete);
    std::set<uint64_t> expected, got;
    for (const auto& t : all) {
      if (q.Contains(t.point)) expected.insert(t.seq);
    }
    for (const auto& t : res->tuples) got.insert(t.seq);
    EXPECT_EQ(got, expected) << "query " << iter << " lost tuples";
  }
}

TEST(TakeoverRegressionTest, SiblingPairDeathEventuallyRecovered) {
  // When a node AND its whole sibling subtree die together, vacancy notices
  // routed into the dead pair vanish; the detector-side escalation must walk
  // up the virtual tree until a live branch absorbs the region.
  MindNetOptions opts;
  opts.sim.seed = 321;
  opts.overlay.heartbeat_interval = FromSeconds(2);
  MindNet net(24, opts);
  ASSERT_TRUE(net.Build().ok());

  // Find a node whose exact sibling exists; kill both at once.
  int a = -1, b = -1;
  for (size_t i = 0; i < net.size() && a < 0; ++i) {
    BitCode sib = net.node(i).overlay().code().Sibling();
    for (size_t j = 1; j < net.size(); ++j) {
      if (j != i && net.node(j).overlay().code() == sib) {
        a = static_cast<int>(i);
        b = static_cast<int>(j);
        break;
      }
    }
  }
  ASSERT_GE(a, 0);
  net.node(a).Crash();
  net.node(b).Crash();
  net.sim().RunFor(FromSeconds(120));
  EXPECT_TRUE(net.CodesFormCompleteCover())
      << "dead sibling pair's region was never absorbed";
}

TEST(RebalanceRegressionTest, TimeShiftedCutsServeTheNextDay) {
  // Without the one-day time shift, every next-day tuple lands on the high
  // side of every time cut and storage re-concentrates.
  Schema s({{"x", 0, 999}, {"ts", 0, 14 * 86400ull}});
  Histogram h(s, 64);
  Rng rng(9);
  // "Yesterday's" data, shifted forward one day as the service does.
  for (int i = 0; i < 3000; ++i) {
    h.Add({rng.Uniform(1000), 86400 + 39600 + rng.Uniform(3600)});
  }
  auto tree = CutTree::Balanced(s, h, 6);
  ASSERT_TRUE(tree.ok());
  // "Today's" tuples (same time-of-day, one day later) spread over many
  // regions rather than collapsing into one.
  std::set<std::string> codes;
  for (int i = 0; i < 3000; ++i) {
    Point p{rng.Uniform(1000), 86400 + 39600 + rng.Uniform(3600)};
    codes.insert(tree->CodeForPoint(p, 6).ToString());
  }
  EXPECT_GE(codes.size(), 16u);
}

TEST(AnomalyQueryRegressionTest, ThresholdAboveDomainCapClampsToCap) {
  // Index-2 caps octets at 2 MB; the paper's alpha-flow query asks for
  // > 4,000,000 octets. Values above the cap are stored clamped, so the
  // query must clamp too (not produce an empty/inverted interval).
  AggregateRecord rec;
  rec.src_prefix = IpPrefix(0x0A010000, 16);
  rec.dst_prefix = IpPrefix(0x0A020000, 16);
  rec.window_start = 300;
  rec.octets = 10'000'000;  // above the 2 MB cap
  rec.flows = 3;
  rec.avg_flow_size = 1'000'000;
  auto t = ToIndex2Tuple(rec, 1);
  ASSERT_TRUE(t.has_value());
  PaperIndexOptions defaults;
  EXPECT_EQ(t->point[2], defaults.index2_max_octets);
  // A clamped query rectangle [cap, cap] contains the clamped tuple.
  Rect q({{0, 0xFFFFFFFFull},
          {0, 100000},
          {defaults.index2_max_octets, defaults.index2_max_octets}});
  EXPECT_TRUE(q.Contains(t->point));
}

}  // namespace
}  // namespace mind
