#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/failure_injector.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace mind {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueTest, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(10, [&] { order.push_back(2); });
  q.Schedule(10, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  EventId id = q.Schedule(10, [&] { ++fired; });
  q.Schedule(20, [&] { ++fired; });
  q.Cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  q.Run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  EventId id = q.Schedule(5, [&] { ++fired; });
  q.Run();
  q.Cancel(id);  // must not disturb anything
  q.Schedule(6, [&] { ++fired; });
  q.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilAdvancesClockExactly) {
  EventQueue q;
  int fired = 0;
  q.Schedule(10, [&] { ++fired; });
  q.Schedule(100, [&] { ++fired; });
  size_t n = q.RunUntil(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50u);
  q.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.Schedule(10, [&] {
    times.push_back(q.now());
    q.Schedule(5, [&] { times.push_back(q.now()); });
  });
  q.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueueTest, StepFiresOne) {
  EventQueue q;
  int fired = 0;
  q.Schedule(1, [&] { ++fired; });
  q.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, LimitStopsRun) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) q.Schedule(i + 1, [&] { ++fired; });
  EXPECT_EQ(q.Run(3), 3u);
  EXPECT_EQ(fired, 3);
}

// Timer churn at scale: 100k timers scheduled and almost all cancelled. The
// physical structures (slot array, heap) must stay sized to the peak
// outstanding wave, not grow with the cumulative schedule count — lazy
// cancellation has to compact.
TEST(EventQueueTest, CancelChurn100kDoesNotGrowMemory) {
  EventQueue q;
  uint64_t fired = 0;
  const int kWaves = 1000, kPerWave = 100;  // 100k timers total
  std::vector<EventId> ids;
  for (int w = 0; w < kWaves; ++w) {
    ids.clear();
    for (int i = 0; i < kPerWave; ++i) {
      ids.push_back(q.Schedule(1000 + i, [&fired] { ++fired; }));
    }
    for (int i = 0; i < kPerWave - 5; ++i) q.Cancel(ids[i]);  // 95% cancelled
    q.Run();
  }
  EXPECT_EQ(fired, static_cast<uint64_t>(kWaves) * 5);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.heap_size(), 0u);
  // Peak live per wave is 100; compaction bounds the dead overhang, so the
  // slot array must stay within a small multiple of that.
  EXPECT_LE(q.slot_count(), 4u * kPerWave);
}

// Slot reuse bumps the generation: a stale handle from a fired event must not
// cancel the unrelated event that now occupies the same slot.
TEST(EventQueueTest, StaleCancelOnReusedSlotIsNoop) {
  EventQueue q;
  int a = 0, b = 0;
  EventId id1 = q.Schedule(10, [&a] { ++a; });
  q.Run();
  EventId id2 = q.Schedule(10, [&b] { ++b; });
  EXPECT_NE(id1, id2);
  q.Cancel(id1);  // stale: same slot, older generation
  q.Run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

// ---------------------------------------------------------------- Network

struct TestMsg : Message {
  explicit TestMsg(int v, size_t size = 64) : value(v), bytes(size) {}
  int value;
  size_t bytes;
  size_t SizeBytes() const override { return bytes; }
  const char* TypeName() const override { return "TestMsg"; }
};

class RecordingHost : public Host {
 public:
  struct Delivery {
    NodeId from;
    int value;
    SimTime at;
  };
  std::vector<Delivery> received;
  std::vector<NodeId> failures;
  EventQueue* q = nullptr;

  void HandleMessage(NodeId from, const MessagePtr& msg) override {
    auto* m = dynamic_cast<TestMsg*>(msg.get());
    ASSERT_NE(m, nullptr);
    received.push_back({from, m->value, q->now()});
  }
  void HandleSendFailure(NodeId to, const MessagePtr&) override {
    failures.push_back(to);
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NetworkOptions opts;
    opts.default_latency = FromMillis(10);
    opts.jitter_sigma_ln = 0.0;
    opts.jitter_mu_ln_ms = -100;  // ~0 jitter
    net_ = std::make_unique<Network>(&q_, opts);
    for (auto& h : hosts_) {
      h.q = &q_;
      net_->AddHost(&h);
    }
  }
  EventQueue q_;
  std::unique_ptr<Network> net_;
  RecordingHost hosts_[4];
};

TEST_F(NetworkTest, DeliversWithLatency) {
  net_->Send(0, 1, std::make_shared<TestMsg>(42));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 1u);
  EXPECT_EQ(hosts_[1].received[0].from, 0);
  EXPECT_EQ(hosts_[1].received[0].value, 42);
  // >= latency (plus transmission), < 2x latency.
  EXPECT_GE(hosts_[1].received[0].at, FromMillis(10));
  EXPECT_LT(hosts_[1].received[0].at, FromMillis(20));
}

TEST_F(NetworkTest, LoopbackIsFast) {
  net_->Send(2, 2, std::make_shared<TestMsg>(1));
  q_.Run();
  ASSERT_EQ(hosts_[2].received.size(), 1u);
  EXPECT_LT(hosts_[2].received[0].at, FromMillis(1));
}

TEST_F(NetworkTest, FifoOrderOnLink) {
  for (int i = 0; i < 5; ++i) net_->Send(0, 1, std::make_shared<TestMsg>(i));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(hosts_[1].received[i].value, i);
}

TEST_F(NetworkTest, BandwidthQueuesBigMessages) {
  // 2 MiB/s default: a 2 MiB message takes ~1 s to transmit; the second
  // queues behind the first.
  net_->Send(0, 1, std::make_shared<TestMsg>(1, 2 * 1024 * 1024));
  net_->Send(0, 1, std::make_shared<TestMsg>(2, 2 * 1024 * 1024));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 2u);
  EXPECT_GE(hosts_[1].received[0].at, FromSeconds(1.0));
  EXPECT_GE(hosts_[1].received[1].at, FromSeconds(2.0));
}

TEST_F(NetworkTest, SeparateLinksDoNotQueue) {
  net_->Send(0, 1, std::make_shared<TestMsg>(1, 2 * 1024 * 1024));
  net_->Send(2, 1, std::make_shared<TestMsg>(2, 64));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 2u);
  // The small message on the independent link is not stuck behind the big one.
  EXPECT_EQ(hosts_[1].received[0].value, 2);
}

TEST_F(NetworkTest, DeadDestinationNotifiesSender) {
  net_->SetNodeUp(1, false);
  net_->Send(0, 1, std::make_shared<TestMsg>(1));
  q_.Run();
  EXPECT_TRUE(hosts_[1].received.empty());
  ASSERT_EQ(hosts_[0].failures.size(), 1u);
  EXPECT_EQ(hosts_[0].failures[0], 1);
}

TEST_F(NetworkTest, DeadSenderSendsNothing) {
  net_->SetNodeUp(0, false);
  net_->Send(0, 1, std::make_shared<TestMsg>(1));
  q_.Run();
  EXPECT_TRUE(hosts_[1].received.empty());
  EXPECT_TRUE(hosts_[0].failures.empty());
}

TEST_F(NetworkTest, DeathInFlightNotifiesSender) {
  net_->Send(0, 1, std::make_shared<TestMsg>(1));
  // Kill node 1 before delivery (latency is 10ms).
  q_.Schedule(FromMillis(1), [&] { net_->SetNodeUp(1, false); });
  q_.Run();
  EXPECT_TRUE(hosts_[1].received.empty());
  EXPECT_EQ(hosts_[0].failures.size(), 1u);
}

TEST_F(NetworkTest, LinkDownNotifiesSenderAndRecovers) {
  net_->SetLinkDown(0, 1, FromSeconds(5));
  EXPECT_FALSE(net_->IsLinkUp(0, 1));
  EXPECT_FALSE(net_->IsLinkUp(1, 0));  // both directions
  net_->Send(0, 1, std::make_shared<TestMsg>(1));
  q_.RunUntil(FromSeconds(6));
  EXPECT_EQ(hosts_[0].failures.size(), 1u);
  EXPECT_TRUE(net_->IsLinkUp(0, 1));
  net_->Send(0, 1, std::make_shared<TestMsg>(2));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 1u);
  EXPECT_EQ(hosts_[1].received[0].value, 2);
}

TEST_F(NetworkTest, LinkStatsCountTraffic) {
  net_->Send(0, 1, std::make_shared<TestMsg>(1, 100));
  net_->Send(0, 1, std::make_shared<TestMsg>(2, 50));
  q_.Run();
  auto stats = net_->GetLinkStats(0, 1);
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 150u);
  EXPECT_EQ(net_->GetLinkStats(1, 0).messages, 0u);
}

TEST_F(NetworkTest, LatencyOverride) {
  net_->SetLatency(0, 1, FromMillis(123));
  EXPECT_EQ(net_->Latency(0, 1), FromMillis(123));
  EXPECT_EQ(net_->Latency(1, 0), FromMillis(123));
  net_->Send(0, 1, std::make_shared<TestMsg>(9));
  q_.Run();
  ASSERT_EQ(hosts_[1].received.size(), 1u);
  EXPECT_GE(hosts_[1].received[0].at, FromMillis(123));
}

TEST_F(NetworkTest, DelayObserverSeesDeliveries) {
  int observed = 0;
  SimTime total = 0;
  net_->SetDelayObserver([&](NodeId, NodeId, SimTime d) {
    ++observed;
    total += d;
  });
  net_->Send(0, 1, std::make_shared<TestMsg>(1));
  q_.Run();
  EXPECT_EQ(observed, 1);
  EXPECT_GE(total, FromMillis(10));
}

TEST(GeoTest, GreatCircleSanity) {
  // LA <-> NYC is about 3940 km.
  GeoPoint la{34.05, -118.24};
  GeoPoint nyc{40.71, -74.01};
  double km = GreatCircleKm(la, nyc);
  EXPECT_NEAR(km, 3940, 100);
  EXPECT_NEAR(GreatCircleKm(la, la), 0.0, 1e-6);
  // Propagation delay: ~3940*1.3/200 + 1.5ms overhead ~= 27 ms one way.
  SimTime d = PropagationDelayUs(la, nyc);
  EXPECT_GT(d, FromMillis(20));
  EXPECT_LT(d, FromMillis(40));
}

TEST(GeoTest, PositionedHostsGetGeoLatency) {
  EventQueue q;
  NetworkOptions opts;
  Network net(&q, opts);
  RecordingHost a, b;
  a.q = &q;
  b.q = &q;
  NodeId ia = net.AddHost(&a, GeoPoint{34.05, -118.24});
  NodeId ib = net.AddHost(&b, GeoPoint{40.71, -74.01});
  SimTime lat = net.Latency(ia, ib);
  EXPECT_GT(lat, FromMillis(20));
  EXPECT_LT(lat, FromMillis(40));
}

// ---------------------------------------------------------------- Failures

TEST(FailureInjectorTest, SchedulesLinkFlaps) {
  EventQueue q;
  NetworkOptions nopts;
  Network net(&q, nopts);
  RecordingHost hosts[3];
  for (auto& h : hosts) {
    h.q = &q;
    net.AddHost(&h);
  }
  FailureOptions fopts;
  fopts.link_flaps_per_pair_hour = 30.0;  // high rate for the test
  fopts.mean_flap_duration = FromSeconds(10);
  fopts.seed = 1;
  FailureInjector inj(&q, &net, fopts);
  inj.Start(FromSeconds(3600));
  EXPECT_GT(inj.scheduled_flaps(), 0u);
  q.RunUntil(FromSeconds(3600));
}

TEST(FailureInjectorTest, NodeChurnFiresCallbacksAndRestoresNodes) {
  EventQueue q;
  NetworkOptions nopts;
  Network net(&q, nopts);
  RecordingHost hosts[4];
  for (auto& h : hosts) {
    h.q = &q;
    net.AddHost(&h);
  }
  FailureOptions fopts;
  fopts.node_crashes_per_hour = 20.0;
  fopts.mean_downtime = FromSeconds(30);
  fopts.seed = 2;
  FailureInjector inj(&q, &net, fopts);
  int crashes = 0, revives = 0;
  inj.set_on_crash([&](NodeId) { ++crashes; });
  inj.set_on_revive([&](NodeId) { ++revives; });
  inj.Start(FromSeconds(3600));
  EXPECT_GT(inj.scheduled_crashes(), 0u);
  q.Run();
  EXPECT_GT(crashes, 0);
  EXPECT_EQ(crashes, revives);
  for (NodeId i = 0; i < 4; ++i) EXPECT_TRUE(net.IsNodeUp(i));
}

TEST(FailureInjectorTest, ChurnRestriction) {
  EventQueue q;
  NetworkOptions nopts;
  Network net(&q, nopts);
  RecordingHost hosts[4];
  for (auto& h : hosts) {
    h.q = &q;
    net.AddHost(&h);
  }
  FailureOptions fopts;
  fopts.node_crashes_per_hour = 50.0;
  fopts.seed = 3;
  FailureInjector inj(&q, &net, fopts);
  std::vector<NodeId> crashed;
  inj.set_on_crash([&](NodeId id) { crashed.push_back(id); });
  inj.RestrictChurn(2, 3);
  inj.Start(FromSeconds(3600));
  q.Run();
  for (NodeId id : crashed) EXPECT_GE(id, 2);
}

// ---------------------------------------------------------------- Simulator

TEST(SimulatorTest, OwnsWorldAndRuns) {
  Simulator sim;
  RecordingHost a, b;
  a.q = &sim.events();
  b.q = &sim.events();
  sim.network().AddHost(&a);
  sim.network().AddHost(&b);
  sim.network().Send(0, 1, std::make_shared<TestMsg>(5));
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GT(sim.now(), 0u);
}

TEST(SimulatorTest, RunForAdvancesRelative) {
  Simulator sim;
  sim.RunFor(FromSeconds(10));
  EXPECT_EQ(sim.now(), FromSeconds(10));
  sim.RunFor(FromSeconds(5));
  EXPECT_EQ(sim.now(), FromSeconds(15));
}

TEST(SimulatorTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    SimulatorOptions opts;
    opts.seed = seed;
    Simulator sim(opts);
    RecordingHost a, b;
    a.q = &sim.events();
    b.q = &sim.events();
    sim.network().AddHost(&a);
    sim.network().AddHost(&b);
    for (int i = 0; i < 10; ++i) sim.network().Send(0, 1, std::make_shared<TestMsg>(i));
    sim.Run();
    std::vector<SimTime> times;
    for (auto& d : b.received) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace mind
