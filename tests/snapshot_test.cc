// MSN1 snapshot/restore (DESIGN.md §14).
//
// The contract under test: a net restored from a snapshot and run forward is
// bit-identical — StateDigest and observable results — to the net that never
// stopped. Serial and parallel, every index backend, across thread and shard
// counts (discipline mode), with outage plans in force and heartbeat timers
// live. Plus the refusal paths: non-quiescent saves, stale nets, corrupted
// and truncated streams, each with a precise field-level error.
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "frontend/ingest_pipeline.h"
#include "frontend/trace_source.h"
#include "mind/mind_net.h"
#include "sim/simulator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"
#include "util/rng.h"

namespace mind {
namespace {

constexpr size_t kFleet = 12;

IndexDef SnapIndexDef() {
  IndexDef def;
  def.name = "snap_idx";
  def.schema = Schema({{"x", 0, 9999}, {"ts", 0, UINT64_MAX}, {"y", 0, 9999}});
  def.carried = {"payload"};
  def.time_attr = 1;
  return def;
}

Tuple SnapTuple(Rng* rng, uint64_t seq) {
  Tuple t;
  t.point = {rng->Uniform(10000), 1000 + seq, rng->Uniform(10000)};
  t.extra = {seq};
  t.origin = static_cast<int>(rng->Uniform(kFleet));
  t.seq = seq;
  return t;
}

/// `threads == -1` is the legacy sequential engine; `threads == 0` the
/// sequential engine under the determinism discipline; > 0 the sharded
/// parallel engine (which implies the discipline).
MindNetOptions SnapOpts(int threads,
                        IndexBackendKind backend = IndexBackendKind::kSortedRuns,
                        int shards = 0) {
  MindNetOptions opts;
  opts.sim.seed = 0x5aa5;
  opts.sim.threads = threads > 0 ? threads : 0;
  opts.sim.shards = shards;
  opts.sim.deterministic_discipline = threads == 0;
  opts.mind.store_backend = backend;
  // Live heartbeat timers at save time: the one event class the snapshot
  // layer re-arms, so every round trip here exercises that path.
  opts.overlay.heartbeat_interval = FromSeconds(5);
  return opts;
}

void Phase1(MindNet& net) {
  ASSERT_TRUE(net.Build().ok());
  IndexDef def = SnapIndexDef();
  ASSERT_TRUE(net.CreateIndexEverywhere(
                     def, std::make_shared<CutTree>(CutTree::Even(def.schema)),
                     1, 0)
                  .ok());
  Rng rng(7);
  for (uint64_t i = 0; i < 60; ++i) {
    Tuple t = SnapTuple(&rng, i);
    size_t src = rng.Uniform(kFleet);
    ASSERT_TRUE(net.node(src).Insert("snap_idx", std::move(t)).ok());
    net.sim().RunFor(FromMillis(40));
  }
  net.sim().RunFor(FromSeconds(30));
}

/// Heartbeat messages are periodically in flight, so quiescence is a window,
/// not a permanent state: step until SaveSnapshot succeeds. The caller's
/// timeline continues from exactly the saved instant either way.
std::string SaveWhenQuiet(MindNet& net) {
  for (int i = 0; i < 200; ++i) {
    std::ostringstream out;
    Status st = net.SaveSnapshot(out);
    if (st.ok()) return out.str();
    net.sim().RunFor(FromMillis(100));
  }
  ADD_FAILURE() << "net never reached a quiescent window";
  return {};
}

struct Phase2Result {
  uint64_t digest = 0;
  size_t tuples = 0;
  std::vector<size_t> query_sizes;

  bool operator==(const Phase2Result& o) const {
    return digest == o.digest && tuples == o.tuples &&
           query_sizes == o.query_sizes;
  }
};

/// The post-snapshot workload both arms run: more inserts, two range
/// queries, settle. Uses its own RNG so the straight-through and restored
/// timelines drive byte-identical inputs.
Phase2Result Phase2(MindNet& net) {
  Rng rng(13);
  for (uint64_t i = 100; i < 140; ++i) {
    Tuple t = SnapTuple(&rng, i);
    size_t src = rng.Uniform(kFleet);
    EXPECT_TRUE(net.node(src).Insert("snap_idx", std::move(t)).ok());
    net.sim().RunFor(FromMillis(40));
  }
  Phase2Result r;
  auto record = [&r](const QueryResult& qr) {
    EXPECT_TRUE(qr.complete);
    r.query_sizes.push_back(qr.tuples.size());
  };
  EXPECT_TRUE(net.node(2)
                  .Query("snap_idx",
                         Rect({{0, 4999}, {0, UINT64_MAX}, {0, 9999}}), record)
                  .ok());
  EXPECT_TRUE(net.node(7)
                  .Query("snap_idx",
                         Rect({{0, 9999}, {1050, 1120}, {2000, 8000}}), record)
                  .ok());
  net.sim().RunFor(FromSeconds(30));
  r.digest = net.StateDigest();
  r.tuples = net.TotalPrimaryTuples("snap_idx");
  EXPECT_EQ(r.query_sizes.size(), 2u);
  return r;
}

/// Straight-through arm: phase 1, snapshot (kept for the other arm), phase 2.
Phase2Result RunStraight(const MindNetOptions& opts, std::string* snapshot) {
  MindNet net(kFleet, opts);
  Phase1(net);
  *snapshot = SaveWhenQuiet(net);
  return Phase2(net);
}

/// Restored arm: fresh net, LoadSnapshot (digest-gated internally), phase 2.
Phase2Result RunRestored(const MindNetOptions& opts,
                         const std::string& snapshot) {
  MindNet net(kFleet, opts);
  std::istringstream in(snapshot);
  Status st = net.LoadSnapshot(in);
  EXPECT_TRUE(st.ok()) << st.message();
  return Phase2(net);
}

// ------------------------------------------------------------ round trips

TEST(SnapshotTest, LegacySerialRestoreThenRunIsBitIdentical) {
  std::string snap;
  Phase2Result straight = RunStraight(SnapOpts(-1), &snap);
  ASSERT_FALSE(snap.empty());
  Phase2Result restored = RunRestored(SnapOpts(-1), snap);
  EXPECT_EQ(straight.digest, restored.digest);
  EXPECT_TRUE(straight == restored);
}

TEST(SnapshotTest, RoundTripAcrossBackendsSerialAndParallel) {
  for (IndexBackendKind backend :
       {IndexBackendKind::kSortedRuns, IndexBackendKind::kBitmap,
        IndexBackendKind::kAdaptive}) {
    std::string snap;
    Phase2Result straight = RunStraight(SnapOpts(0, backend), &snap);
    ASSERT_FALSE(snap.empty());
    // Same engine restore, and the discipline's promise: the same snapshot
    // restores into the threads=4 engine with an identical digest.
    Phase2Result serial = RunRestored(SnapOpts(0, backend), snap);
    Phase2Result parallel = RunRestored(SnapOpts(4, backend), snap);
    EXPECT_TRUE(straight == serial)
        << "backend=" << static_cast<int>(backend);
    EXPECT_TRUE(straight == parallel)
        << "backend=" << static_cast<int>(backend);
  }
}

TEST(SnapshotTest, DisciplineRestoreAcrossThreadAndShardCounts) {
  std::string snap;
  Phase2Result straight = RunStraight(SnapOpts(0), &snap);
  ASSERT_FALSE(snap.empty());
  for (int threads : {0, 1, 2, 4}) {
    Phase2Result restored = RunRestored(SnapOpts(threads), snap);
    EXPECT_TRUE(straight == restored) << "threads=" << threads;
  }
  // Ordering keys are engine-independent, so even a different shard count
  // restores bit-identically.
  Phase2Result resharded = RunRestored(SnapOpts(2, IndexBackendKind::kSortedRuns,
                                                /*shards=*/5),
                                       snap);
  EXPECT_TRUE(straight == resharded);
}

TEST(SnapshotTest, SnapshotMidOutagePlanCarriesThePlan) {
  // Planned link flaps (discipline mode writes them into the network as an
  // immutable plan, no queue events). The snapshot is taken while part of
  // the plan is still in the future; both arms then run through it.
  MindNetOptions opts = SnapOpts(0);
  opts.sim.failures.link_flaps_per_pair_hour = 4.0;
  std::string snap;
  Phase2Result straight;
  {
    MindNet net(kFleet, opts);
    Phase1(net);
    net.sim().failures().Start(FromSeconds(600));  // plan beyond the snapshot
    ASSERT_GT(net.sim().failures().scheduled_flaps(), 0u);
    snap = SaveWhenQuiet(net);
    ASSERT_FALSE(snap.empty());
    straight = Phase2(net);
  }
  Phase2Result restored = RunRestored(opts, snap);
  EXPECT_TRUE(straight == restored);
}

// ------------------------------------------------------------ refusal paths

TEST(SnapshotTest, SaveRefusedWhileEventsAreInFlight) {
  MindNetOptions opts = SnapOpts(-1);
  MindNet net(kFleet, opts);
  Phase1(net);
  // An in-flight query holds a timeout event (and reply messages) no byte
  // stream can carry: the quiescence audit must name the pending events.
  ASSERT_TRUE(net.node(0)
                  .Query("snap_idx",
                         Rect({{0, 9999}, {0, UINT64_MAX}, {0, 9999}}),
                         [](const QueryResult&) {})
                  .ok());
  std::ostringstream out;
  Status st = net.SaveSnapshot(out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pending event"), std::string::npos)
      << st.message();
  // Legacy-mode failure injection schedules SetLinkDown queue events (no
  // immutable plan outside the discipline) — same refusal.
  MindNetOptions flappy = SnapOpts(-1);
  flappy.sim.failures.link_flaps_per_pair_hour = 4.0;
  MindNet net2(kFleet, flappy);
  ASSERT_TRUE(net2.Build().ok());
  net2.sim().RunFor(FromSeconds(30));
  net2.sim().failures().Start(FromSeconds(300));
  ASSERT_GT(net2.sim().failures().scheduled_flaps(), 0u);
  std::ostringstream out2;
  st = net2.SaveSnapshot(out2);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("pending event"), std::string::npos)
      << st.message();
}

TEST(SnapshotTest, RestoreRequiresFreshNet) {
  std::string snap;
  {
    MindNet net(kFleet, SnapOpts(-1));
    Phase1(net);
    snap = SaveWhenQuiet(net);
  }
  MindNet used(kFleet, SnapOpts(-1));
  ASSERT_TRUE(used.Build().ok());
  std::istringstream in(snap);
  Status st = used.LoadSnapshot(in);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("freshly constructed"), std::string::npos)
      << st.message();
}

TEST(SnapshotTest, MidIngestSnapshotRefusedUntilPipelineDrains) {
  // A frontend pipeline holding deferred tuples is driver-side state the
  // snapshot format deliberately excludes — so while the pipeline is
  // mid-flight (pump event pending, holdover buffer non-empty) SaveSnapshot
  // must refuse, and once the pipeline drains the same net must snapshot
  // and restore cleanly.
  Topology topo = Topology::Abilene();
  MindNetOptions opts;
  opts.sim.seed = 0xfe05;
  auto net = std::make_unique<MindNet>(topo.size(), opts);
  ASSERT_TRUE(net->Build().ok());
  for (const IndexDef& def : {MakeIndex2({})}) {
    auto cuts = std::make_shared<CutTree>(CutTree::Even(def.schema));
    ASSERT_TRUE(net->CreateIndexEverywhere(def, cuts, 1, 0).ok());
  }
  std::vector<FlowRecord> flows;
  for (int p = 0; p < 40; ++p) {
    const uint32_t dst = 0xc0000000u + static_cast<uint32_t>(p) * 0x10000u;
    for (double dt : {0.0, 0.005}) {
      FlowRecord f;
      f.src_ip = 0x0a000001u;
      f.dst_ip = dst;
      f.src_port = 1234;
      f.dst_port = 80;
      f.bytes = 50'000;
      f.packets = 40;
      f.time_sec = 39600.0 + 0.01 * p + dt;
      f.router = 0;
      flows.push_back(f);
    }
  }
  frontend::VectorTraceSource src(flows);
  frontend::IngestOptions iopts;
  iopts.feed_index1 = false;
  iopts.feed_index3 = false;
  iopts.batcher.batch_max_tuples = 4;
  iopts.batcher.queue_max_tuples = 8;
  iopts.batcher.policy = frontend::OverflowPolicy::kDefer;
  frontend::IngestPipeline pipe(net.get(), &src, iopts);
  pipe.Start();

  bool refused_with_holdover = false;
  for (int i = 0; i < 400 && !pipe.done(); ++i) {
    net->sim().RunFor(FromMillis(125));
    if (pipe.holdover_tuples() > 0 && !refused_with_holdover) {
      std::ostringstream out;
      Status st = net->SaveSnapshot(out);
      ASSERT_FALSE(st.ok()) << "snapshot accepted with "
                            << pipe.holdover_tuples()
                            << " held-over tuples and a pending pump";
      EXPECT_NE(st.message().find("pending event"), std::string::npos)
          << st.message();
      refused_with_holdover = true;
    }
  }
  EXPECT_TRUE(refused_with_holdover)
      << "back-pressure never parked a tuple in the holdover buffer";
  ASSERT_TRUE(pipe.done());
  net->sim().RunFor(FromSeconds(30));
  EXPECT_EQ(pipe.queued_tuples(), 0u);
  EXPECT_EQ(pipe.holdover_tuples(), 0u);

  std::ostringstream out;
  ASSERT_TRUE(net->SaveSnapshot(out).ok());
  MindNet fresh(topo.size(), opts);
  std::istringstream in(out.str());
  Status st = fresh.LoadSnapshot(in);  // digest-gated internally
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(fresh.TotalPrimaryTuples("index2_octets"),
            net->TotalPrimaryTuples("index2_octets"));
}

// ------------------------------------------------------ corrupted streams

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MindNet net(kFleet, SnapOpts(-1));
    Phase1(net);
    snap_ = SaveWhenQuiet(net);
    ASSERT_FALSE(snap_.empty());
  }

  Status Load(const std::string& bytes, int threads = -1) {
    MindNet net(kFleet, SnapOpts(threads));
    std::istringstream in(bytes);
    return net.LoadSnapshot(in);
  }

  std::string snap_;
};

TEST_F(SnapshotCorruptionTest, ValidStreamRestores) {
  EXPECT_TRUE(Load(snap_).ok());
}

TEST_F(SnapshotCorruptionTest, BadMagicNamesTheField) {
  std::string bad = snap_;
  bad[0] = 'X';
  Status st = Load(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("header.magic"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruptionTest, UnsupportedVersionNamesTheField) {
  std::string bad = snap_;
  bad[4] = 9;  // u16 version field, little-endian low byte
  Status st = Load(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("header.version"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruptionTest, EngineModeMismatchNamesTheFlags) {
  Status st = Load(snap_, /*threads=*/0);  // legacy snapshot, discipline net
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("header.flags"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("legacy engine"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruptionTest, WrongFleetSizeNamesTheCount) {
  MindNet small(kFleet - 2, SnapOpts(-1));
  std::istringstream in(snap_);
  Status st = small.LoadSnapshot(in);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("header.node_count"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruptionTest, TruncationReportsFieldAndOffset) {
  Status st = Load(snap_.substr(0, snap_.size() / 2));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("truncated"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("offset"), std::string::npos) << st.message();
}

TEST_F(SnapshotCorruptionTest, LateBitRotTripsTheTrailerChecksum) {
  // A flipped byte in the last node's RNG block parses fine (any u64 is a
  // valid RNG word) — the running checksum is what catches it.
  std::string bad = snap_;
  bad[bad.size() - 12] ^= 0x40;
  Status st = Load(bad);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailer.checksum"), std::string::npos)
      << st.message();
}

TEST_F(SnapshotCorruptionTest, MidStreamCorruptionNeverRestoresSilently) {
  // Sweep a byte flip across the stream: every position must either fail a
  // field validation, the trailer checksum, or the final digest gate —
  // never restore "successfully" with altered bytes.
  for (size_t pos = 8; pos + 8 < snap_.size(); pos += 97) {
    std::string bad = snap_;
    bad[pos] ^= 0x04;
    Status st = Load(bad);
    EXPECT_FALSE(st.ok()) << "byte flip at offset " << pos
                          << " restored silently";
  }
}

}  // namespace
}  // namespace mind
