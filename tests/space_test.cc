#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "space/cut_tree.h"
#include "space/histogram.h"
#include "space/mismatch.h"
#include "space/rect.h"
#include "space/schema.h"
#include "util/rng.h"

namespace mind {
namespace {

Schema MakeSchema3() {
  return Schema({{"x", 0, 999}, {"y", 0, 999}, {"z", 0, 999}});
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, ValidateAcceptsGood) {
  EXPECT_TRUE(MakeSchema3().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsBad) {
  EXPECT_TRUE(Schema(std::vector<AttributeDef>{}).Validate().IsInvalidArgument());
  EXPECT_TRUE(Schema({{"", 0, 1}}).Validate().IsInvalidArgument());
  EXPECT_TRUE(Schema({{"a", 0, 1}, {"a", 0, 1}}).Validate().IsInvalidArgument());
  EXPECT_TRUE(Schema({{"a", 5, 4}}).Validate().IsInvalidArgument());
}

TEST(SchemaTest, FindAttr) {
  Schema s = MakeSchema3();
  EXPECT_EQ(s.FindAttr("y"), 1);
  EXPECT_EQ(s.FindAttr("nope"), -1);
}

TEST(SchemaTest, ClampAndContains) {
  Schema s({{"a", 10, 20}});
  EXPECT_EQ(s.Clamp({5})[0], 10u);
  EXPECT_EQ(s.Clamp({25})[0], 20u);
  EXPECT_EQ(s.Clamp({15})[0], 15u);
  EXPECT_TRUE(s.Contains({15}));
  EXPECT_FALSE(s.Contains({5}));
  EXPECT_FALSE(s.Contains({15, 15}));  // wrong arity
}

// ---------------------------------------------------------------- Rect

TEST(RectTest, FullSpaceMatchesSchema) {
  Schema s = MakeSchema3();
  Rect r = Rect::FullSpace(s);
  EXPECT_EQ(r.dims(), 3);
  EXPECT_EQ(r.interval(0).lo, 0u);
  EXPECT_EQ(r.interval(2).hi, 999u);
}

TEST(RectTest, ContainsPoint) {
  Rect r({{0, 10}, {5, 5}});
  EXPECT_TRUE(r.Contains(Point{3, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 5}));
  EXPECT_TRUE(r.Contains(Point{10, 5}));  // inclusive bounds
  EXPECT_FALSE(r.Contains(Point{11, 5}));
  EXPECT_FALSE(r.Contains(Point{3, 6}));
}

TEST(RectTest, IntersectionLogic) {
  Rect a({{0, 10}, {0, 10}});
  Rect b({{5, 15}, {8, 20}});
  ASSERT_TRUE(a.Intersects(b));
  auto c = a.Intersect(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->interval(0).lo, 5u);
  EXPECT_EQ(c->interval(0).hi, 10u);
  EXPECT_EQ(c->interval(1).lo, 8u);
  EXPECT_EQ(c->interval(1).hi, 10u);

  Rect d({{11, 12}, {0, 10}});
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_FALSE(a.Intersect(d).has_value());
  // Touching at a single value counts (inclusive).
  Rect e({{10, 12}, {10, 12}});
  EXPECT_TRUE(a.Intersects(e));
}

TEST(RectTest, ContainsRect) {
  Rect a({{0, 10}, {0, 10}});
  EXPECT_TRUE(a.Contains(Rect({{2, 8}, {0, 10}})));
  EXPECT_FALSE(a.Contains(Rect({{2, 11}, {0, 10}})));
  EXPECT_TRUE(a.Contains(a));
}

TEST(IntervalTest, SizeSaturates) {
  Interval full{0, UINT64_MAX};
  EXPECT_EQ(full.Size(), UINT64_MAX);
  Interval one{7, 7};
  EXPECT_EQ(one.Size(), 1u);
}

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BinMappingCoversDomain) {
  Schema s({{"a", 0, 99}});
  Histogram h(s, 10);
  EXPECT_EQ(h.BinOf(0, 0), 0);
  EXPECT_EQ(h.BinOf(0, 9), 0);
  EXPECT_EQ(h.BinOf(0, 10), 1);
  EXPECT_EQ(h.BinOf(0, 99), 9);
  EXPECT_EQ(h.BinOf(0, 12345), 9);  // clamped
  EXPECT_EQ(h.BinLo(0, 0), 0u);
  EXPECT_EQ(h.BinHi(0, 0), 9u);
  EXPECT_EQ(h.BinLo(0, 9), 90u);
  EXPECT_EQ(h.BinHi(0, 9), 99u);
}

TEST(HistogramTest, BinMappingFullUint64Domain) {
  Schema s({{"a", 0, UINT64_MAX}});
  Histogram h(s, 4);
  EXPECT_EQ(h.BinOf(0, 0), 0);
  EXPECT_EQ(h.BinOf(0, UINT64_MAX), 3);
  EXPECT_EQ(h.BinOf(0, UINT64_MAX / 2), 1);
  EXPECT_EQ(h.BinHi(0, 3), UINT64_MAX);
}

TEST(HistogramTest, AddAndCellMass) {
  Schema s({{"a", 0, 99}, {"b", 0, 99}});
  Histogram h(s, 10);
  h.Add({5, 5});
  h.Add({5, 7}, 2.0);
  h.Add({95, 95});
  EXPECT_DOUBLE_EQ(h.total_mass(), 4.0);
  EXPECT_DOUBLE_EQ(h.CellMass({0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(h.CellMass({9, 9}), 1.0);
  EXPECT_DOUBLE_EQ(h.CellMass({5, 5}), 0.0);
  EXPECT_EQ(h.num_nonzero_cells(), 2u);
}

TEST(HistogramTest, MergeRequiresSameShape) {
  Schema s({{"a", 0, 99}});
  Histogram h1(s, 10), h2(s, 10), h3(s, 5);
  h1.Add({5});
  h2.Add({95});
  EXPECT_TRUE(h1.Merge(h2).ok());
  EXPECT_DOUBLE_EQ(h1.total_mass(), 2.0);
  EXPECT_TRUE(h1.Merge(h3).IsInvalidArgument());
  Histogram h4(Schema({{"b", 0, 99}}), 10);
  EXPECT_TRUE(h1.Merge(h4).IsInvalidArgument());
}

TEST(HistogramTest, MassInRectExactOnCellBoundaries) {
  Schema s({{"a", 0, 99}});
  Histogram h(s, 10);
  for (int i = 0; i < 100; ++i) h.Add({static_cast<Value>(i)});
  EXPECT_NEAR(h.MassInRect(Rect({{0, 99}})), 100.0, 1e-9);
  EXPECT_NEAR(h.MassInRect(Rect({{0, 49}})), 50.0, 1e-9);
  // Half of one bin, interpolated.
  EXPECT_NEAR(h.MassInRect(Rect({{0, 4}})), 5.0, 1e-9);
}

TEST(HistogramTest, WeightedCellCentersDeterministicOrder) {
  Schema s({{"a", 0, 99}, {"b", 0, 99}});
  Histogram h(s, 10);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    h.Add({rng.Uniform(100), rng.Uniform(100)});
  }
  auto c1 = h.WeightedCellCenters();
  auto c2 = h.WeightedCellCenters();
  EXPECT_EQ(c1, c2);
  double total = 0;
  for (auto& [p, m] : c1) total += m;
  EXPECT_NEAR(total, 200.0, 1e-9);
}

// ---------------------------------------------------------------- Mismatch

TEST(MismatchTest, IdenticalIsZero) {
  Schema s({{"a", 0, 99}});
  Histogram h1(s, 10), h2(s, 10);
  for (int i = 0; i < 50; ++i) {
    h1.Add({static_cast<Value>(i)});
    h2.Add({static_cast<Value>(i)});
  }
  EXPECT_NEAR(MismatchFraction(h1, h2).value(), 0.0, 1e-12);
  EXPECT_NEAR(MismatchTuples(h1, h2).value(), 0.0, 1e-12);
}

TEST(MismatchTest, DisjointIsOne) {
  Schema s({{"a", 0, 99}});
  Histogram h1(s, 10), h2(s, 10);
  for (int i = 0; i < 30; ++i) h1.Add({5});
  for (int i = 0; i < 70; ++i) h2.Add({95});
  EXPECT_NEAR(MismatchFraction(h1, h2).value(), 1.0, 1e-12);
  // Raw mismatch: |30-0|/2 + |0-70|/2 = 50 tuples.
  EXPECT_NEAR(MismatchTuples(h1, h2).value(), 50.0, 1e-12);
}

TEST(MismatchTest, NormalizationIgnoresScale) {
  Schema s({{"a", 0, 99}});
  Histogram h1(s, 10), h2(s, 10);
  for (int i = 0; i < 100; ++i) h1.Add({static_cast<Value>(i)});
  for (int i = 0; i < 100; ++i) {
    h2.Add({static_cast<Value>(i)});
    h2.Add({static_cast<Value>(i)});  // same shape, double mass
  }
  EXPECT_NEAR(MismatchFraction(h1, h2).value(), 0.0, 1e-12);
}

TEST(MismatchTest, SymmetricAndBounded) {
  Schema s({{"a", 0, 99}, {"b", 0, 99}});
  Histogram h1(s, 8), h2(s, 8);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) h1.Add({rng.Uniform(100), rng.Uniform(100)});
  for (int i = 0; i < 300; ++i) h2.Add({rng.Uniform(50), rng.Uniform(100)});
  double m12 = MismatchFraction(h1, h2).value();
  double m21 = MismatchFraction(h2, h1).value();
  EXPECT_NEAR(m12, m21, 1e-12);
  EXPECT_GE(m12, 0.0);
  EXPECT_LE(m12, 1.0);
  EXPECT_GT(m12, 0.3);  // h2 concentrated on half the space
}

TEST(MismatchTest, ErrorsOnShapeMismatchOrEmpty) {
  Schema s({{"a", 0, 99}});
  Histogram h1(s, 10), h2(s, 5), h3(s, 10);
  h1.Add({1});
  EXPECT_FALSE(MismatchFraction(h1, h2).ok());
  EXPECT_FALSE(MismatchFraction(h1, h3).ok());  // h3 empty
}

// ---------------------------------------------------------------- CutTree

TEST(CutTreeEvenTest, CodeForPointFirstCuts) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  // Depth 0 cuts dim x at 499; depth 1 cuts dim y; depth 2 dim z.
  EXPECT_EQ(t.CodeForPoint({0, 0, 0}, 3).ToString(), "000");
  EXPECT_EQ(t.CodeForPoint({999, 0, 0}, 3).ToString(), "100");
  EXPECT_EQ(t.CodeForPoint({0, 999, 0}, 3).ToString(), "010");
  EXPECT_EQ(t.CodeForPoint({0, 0, 999}, 3).ToString(), "001");
  EXPECT_EQ(t.CodeForPoint({999, 999, 999}, 3).ToString(), "111");
  EXPECT_EQ(t.CodeForPoint({499, 499, 499}, 3).ToString(), "000");
  EXPECT_EQ(t.CodeForPoint({500, 500, 500}, 3).ToString(), "111");
}

TEST(CutTreeEvenTest, RectForCodeInvertsCodeForPoint) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  Rng rng(17);
  for (int iter = 0; iter < 200; ++iter) {
    Point p{rng.Uniform(1000), rng.Uniform(1000), rng.Uniform(1000)};
    int len = static_cast<int>(rng.Uniform(13));
    BitCode code = t.CodeForPoint(p, len);
    auto rect = t.RectForCode(code);
    ASSERT_TRUE(rect.has_value());
    EXPECT_TRUE(rect->Contains(p)) << code.ToString();
  }
}

TEST(CutTreeEvenTest, PrefixRectNestsChildRect) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  BitCode code = BitCode::FromString("0110101");
  for (int n = 0; n < code.length(); ++n) {
    auto outer = t.RectForCode(code.Prefix(n));
    auto inner = t.RectForCode(code.Prefix(n + 1));
    ASSERT_TRUE(outer && inner);
    EXPECT_TRUE(outer->Contains(*inner));
  }
}

TEST(CutTreeEvenTest, SiblingRectsPartitionParent) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  BitCode parent = BitCode::FromString("01");
  auto pr = t.RectForCode(parent);
  auto r0 = t.RectForCode(parent.Child(0));
  auto r1 = t.RectForCode(parent.Child(1));
  ASSERT_TRUE(pr && r0 && r1);
  EXPECT_FALSE(r0->Intersects(*r1));
  // Together they cover the parent along the cut dim.
  int dim = t.DimAtDepth(2);
  EXPECT_EQ(r0->interval(dim).lo, pr->interval(dim).lo);
  EXPECT_EQ(r0->interval(dim).hi + 1, r1->interval(dim).lo);
  EXPECT_EQ(r1->interval(dim).hi, pr->interval(dim).hi);
}

TEST(CutTreeEvenTest, DegenerateSingleValueDomain) {
  Schema s({{"a", 5, 5}, {"b", 0, 1}});
  CutTree t = CutTree::Even(s);
  // dim a can never split: every point goes to side 0 at even depths.
  BitCode c = t.CodeForPoint({5, 1}, 4);
  EXPECT_EQ(c.bit(0), 0);
  EXPECT_EQ(c.bit(2), 0);
  auto empty = t.RectForCode(BitCode::FromString("1"));
  EXPECT_FALSE(empty.has_value());
}

TEST(CutTreeEvenTest, MinimalContainingCode) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  // Query contained in the low-x half: first bit is 0, then straddles y.
  Rect q({{0, 100}, {0, 999}, {0, 999}});
  BitCode code = t.MinimalContainingCode(q, 16);
  EXPECT_GE(code.length(), 1);
  EXPECT_EQ(code.bit(0), 0);
  auto rect = t.RectForCode(code);
  ASSERT_TRUE(rect.has_value());
  EXPECT_TRUE(rect->Contains(q));
  // Whole-space query: empty code.
  EXPECT_EQ(t.MinimalContainingCode(Rect::FullSpace(s), 16).length(), 0);
}

TEST(CutTreeEvenTest, MinimalContainingCodeRespectsMaxLen) {
  Schema s({{"a", 0, 1 << 20}});
  CutTree t = CutTree::Even(s);
  Rect point_query({{12345, 12345}});
  BitCode code = t.MinimalContainingCode(point_query, 6);
  EXPECT_EQ(code.length(), 6);
}

TEST(CutTreeEvenTest, IntersectingChildren) {
  Schema s = MakeSchema3();
  CutTree t = CutTree::Even(s);
  // Query in low-x half only.
  Rect q({{0, 100}, {0, 999}, {0, 999}});
  auto kids = t.IntersectingChildren(q, BitCode());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0].ToString(), "0");
  // Query straddling x.
  Rect q2({{400, 600}, {0, 999}, {0, 999}});
  auto kids2 = t.IntersectingChildren(q2, BitCode());
  ASSERT_EQ(kids2.size(), 2u);
}

TEST(CutTreeEvenTest, CoverFindsAllIntersectingLeaves) {
  Schema s({{"a", 0, 999}, {"b", 0, 999}});
  CutTree t = CutTree::Even(s);
  Rect q({{0, 499}, {0, 999}});  // half the space
  auto cover = t.Cover(q, 4);
  ASSERT_TRUE(cover.ok());
  // At len 4: a-dim split twice, b-dim twice; half the a-range -> 8 codes.
  EXPECT_EQ(cover.value().size(), 8u);
  for (const auto& c : cover.value()) {
    auto r = t.RectForCode(c);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->Intersects(q));
  }
}

TEST(CutTreeEvenTest, CoverOverflowErrors) {
  Schema s({{"a", 0, 999}, {"b", 0, 999}});
  CutTree t = CutTree::Even(s);
  auto r = t.Cover(Rect::FullSpace(s), 10, 100);  // 1024 leaves > 100
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(CutTreeBalancedTest, RejectsBadArgs) {
  Schema s = MakeSchema3();
  Histogram h(s, 8);
  h.Add({1, 1, 1});
  EXPECT_FALSE(CutTree::Balanced(s, h, -1).ok());
  EXPECT_FALSE(CutTree::Balanced(s, h, 25).ok());
  Histogram other(Schema({{"q", 0, 9}}), 8);
  EXPECT_FALSE(CutTree::Balanced(s, other, 4).ok());
}

TEST(CutTreeBalancedTest, ZeroDepthEqualsEven) {
  Schema s = MakeSchema3();
  Histogram h(s, 8);
  h.Add({1, 1, 1});
  auto t = CutTree::Balanced(s, h, 0);
  ASSERT_TRUE(t.ok());
  CutTree even = CutTree::Even(s);
  Point p{123, 456, 789};
  EXPECT_EQ(t->CodeForPoint(p, 10), even.CodeForPoint(p, 10));
}

// The central balancing property: with skewed data, balanced cuts spread the
// mass far more evenly over regions than even cuts (Figure 5 / Figure 13).
TEST(CutTreeBalancedTest, BalancesSkewedData) {
  Schema s({{"a", 0, 99999}, {"b", 0, 99999}});
  Histogram h(s, 64);
  Rng rng(21);
  std::vector<Point> pts;
  for (int i = 0; i < 20000; ++i) {
    // Strong skew: 90% of mass in the low 10% of both dims. (The skew must
    // remain resolvable by the histogram bins — the paper notes that
    // balancing efficiency is limited by histogram granularity.)
    Value a = rng.Bernoulli(0.9) ? rng.Uniform(10000) : rng.Uniform(100000);
    Value b = rng.Bernoulli(0.9) ? rng.Uniform(10000) : rng.Uniform(100000);
    pts.push_back({a, b});
    h.Add(pts.back());
  }
  const int depth = 4;  // 16 regions
  auto balanced = CutTree::Balanced(s, h, depth);
  ASSERT_TRUE(balanced.ok());
  CutTree even = CutTree::Even(s);

  auto max_region_count = [&](const CutTree& t) {
    std::map<std::string, int> counts;
    for (const auto& p : pts) counts[t.CodeForPoint(p, depth).ToString()]++;
    int mx = 0;
    for (auto& [_, c] : counts) mx = std::max(mx, c);
    return mx;
  };
  int even_max = max_region_count(even);
  int bal_max = max_region_count(*balanced);
  // Perfect balance would be 20000/16 = 1250 per region.
  EXPECT_LT(bal_max, even_max / 3);
  EXPECT_LT(bal_max, 4000);
  EXPECT_GT(even_max, 10000);  // even cuts pile most data into one region
}

TEST(CutTreeBalancedTest, CodesStillInvertible) {
  Schema s({{"a", 0, 9999}, {"b", 0, 9999}});
  Histogram h(s, 32);
  Rng rng(23);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) {
    Value a = static_cast<Value>(std::min(9999.0, rng.Pareto(10, 0.8)));
    Value b = rng.Uniform(10000);
    pts.push_back({a, b});
    h.Add(pts.back());
  }
  auto t = CutTree::Balanced(s, h, 6);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 500; ++i) {
    const Point& p = pts[i * 10];
    BitCode code = t->CodeForPoint(p, 12);  // deeper than materialized
    auto rect = t->RectForCode(code);
    ASSERT_TRUE(rect.has_value());
    EXPECT_TRUE(rect->Contains(p));
  }
}

TEST(CutTreeBalancedTest, CoverAndPointCodesConsistent) {
  // Every point inside a query rect must land in a region in the rect's
  // cover — the property that makes distributed querying complete.
  Schema s({{"a", 0, 9999}, {"b", 0, 9999}});
  Histogram h(s, 16);
  Rng rng(29);
  for (int i = 0; i < 3000; ++i) {
    h.Add({rng.Uniform(10000) / 10, rng.Uniform(10000)});  // skewed to low a
  }
  auto t = CutTree::Balanced(s, h, 5);
  ASSERT_TRUE(t.ok());
  Rect q({{100, 700}, {2000, 7000}});
  const int len = 7;
  auto cover = t->Cover(q, len);
  ASSERT_TRUE(cover.ok());
  for (int i = 0; i < 2000; ++i) {
    Point p{100 + rng.Uniform(601), 2000 + rng.Uniform(5001)};
    ASSERT_TRUE(q.Contains(p));
    BitCode code = t->CodeForPoint(p, len);
    bool found = std::find(cover->begin(), cover->end(), code) != cover->end();
    ASSERT_TRUE(found) << "point code " << code.ToString()
                       << " missing from cover";
  }
}

// Property sweep over schemas/dimensions: code/rect duality holds for any
// dimensionality and domain shape.
struct TreeParam {
  int dims;
  uint64_t domain_max;
  uint64_t seed;
};

class CutTreePropertyTest : public ::testing::TestWithParam<TreeParam> {};

TEST_P(CutTreePropertyTest, PointAlwaysInOwnRect) {
  const TreeParam param = GetParam();
  std::vector<AttributeDef> attrs;
  for (int d = 0; d < param.dims; ++d) {
    attrs.push_back({"d" + std::to_string(d), 0, param.domain_max});
  }
  Schema s(attrs);
  Rng rng(param.seed);
  Histogram h(s, 8);
  std::vector<Point> pts;
  for (int i = 0; i < 1000; ++i) {
    Point p(param.dims);
    for (int d = 0; d < param.dims; ++d) {
      p[d] = rng.UniformRange(0, param.domain_max);
    }
    h.Add(p);
    pts.push_back(std::move(p));
  }
  auto balanced = CutTree::Balanced(s, h, 6);
  ASSERT_TRUE(balanced.ok());
  CutTree even = CutTree::Even(s);
  for (const CutTree* t : {&even, &*balanced}) {
    for (size_t i = 0; i < pts.size(); i += 7) {
      BitCode code = t->CodeForPoint(pts[i], 10);
      auto rect = t->RectForCode(code);
      ASSERT_TRUE(rect.has_value());
      ASSERT_TRUE(rect->Contains(pts[i]));
    }
  }
}

TEST_P(CutTreePropertyTest, DistinctRegionsAreDisjoint) {
  const TreeParam param = GetParam();
  std::vector<AttributeDef> attrs;
  for (int d = 0; d < param.dims; ++d) {
    attrs.push_back({"d" + std::to_string(d), 0, param.domain_max});
  }
  Schema s(attrs);
  CutTree t = CutTree::Even(s);
  auto cover = t.Cover(Rect::FullSpace(s), 4);
  ASSERT_TRUE(cover.ok());
  for (size_t i = 0; i < cover->size(); ++i) {
    auto ri = t.RectForCode((*cover)[i]);
    ASSERT_TRUE(ri.has_value());
    for (size_t j = i + 1; j < cover->size(); ++j) {
      auto rj = t.RectForCode((*cover)[j]);
      ASSERT_TRUE(rj.has_value());
      EXPECT_FALSE(ri->Intersects(*rj));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CutTreePropertyTest,
    ::testing::Values(TreeParam{1, 1000, 1}, TreeParam{2, 65535, 2},
                      TreeParam{3, 999, 3}, TreeParam{4, 1u << 30, 4},
                      TreeParam{6, UINT32_MAX, 5}, TreeParam{2, 7, 6}));

}  // namespace
}  // namespace mind
