#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/time.h"
#include "space/cut_tree.h"
#include "storage/bitmap_backend.h"
#include "storage/cover_cache.h"
#include "storage/scan_kernels.h"
#include "storage/tuple_store.h"
#include "storage/version_manager.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace mind {
namespace {

Schema MakeSchema() {
  return Schema({{"x", 0, 9999}, {"y", 0, 9999}});
}

CutTreeRef EvenCuts() {
  return std::make_shared<CutTree>(CutTree::Even(MakeSchema()));
}

Tuple MakeTuple(Value x, Value y, int origin = 0, uint64_t seq = 0) {
  Tuple t;
  t.point = {x, y};
  t.extra = {x + y};
  t.origin = origin;
  t.seq = seq;
  return t;
}

TEST(TupleTest, WireBytesScalesWithAttrs) {
  Tuple t = MakeTuple(1, 2);
  EXPECT_EQ(t.WireBytes(), 24 + 8 * 3);
  Tuple empty;
  EXPECT_EQ(empty.WireBytes(), 24u);
}

TEST(TupleStoreTest, InsertAndExactQuery) {
  TupleStore store(EvenCuts(), 24);
  store.Insert(MakeTuple(100, 200));
  store.Insert(MakeTuple(5000, 5000));
  EXPECT_EQ(store.size(), 2u);
  auto r = store.Query(Rect({{0, 999}, {0, 999}}));
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].point, (Point{100, 200}));
}

TEST(TupleStoreTest, EmptyStoreEmptyResult) {
  TupleStore store(EvenCuts(), 24);
  EXPECT_TRUE(store.Query(Rect({{0, 9999}, {0, 9999}})).empty());
  EXPECT_EQ(store.Count(Rect({{0, 9999}, {0, 9999}})), 0u);
}

TEST(TupleStoreTest, InclusiveBoundaries) {
  TupleStore store(EvenCuts(), 24);
  store.Insert(MakeTuple(10, 10));
  store.Insert(MakeTuple(20, 20));
  EXPECT_EQ(store.Count(Rect({{10, 20}, {10, 20}})), 2u);
  EXPECT_EQ(store.Count(Rect({{10, 10}, {10, 10}})), 1u);
  EXPECT_EQ(store.Count(Rect({{11, 19}, {0, 9999}})), 0u);
}

TEST(TupleStoreTest, QueryMatchesBruteForce) {
  Rng rng(31);
  TupleStore store(EvenCuts(), 24);
  std::vector<Tuple> all;
  for (int i = 0; i < 5000; ++i) {
    // Skewed data to stress narrow code regions.
    Value x = rng.Bernoulli(0.7) ? rng.Uniform(100) : rng.Uniform(10000);
    Value y = rng.Uniform(10000);
    Tuple t = MakeTuple(x, y, 0, i);
    all.push_back(t);
    store.Insert(t);
  }
  for (int iter = 0; iter < 50; ++iter) {
    Value x1 = rng.Uniform(10000), x2 = rng.Uniform(10000);
    Value y1 = rng.Uniform(10000), y2 = rng.Uniform(10000);
    Rect q({{std::min(x1, x2), std::max(x1, x2)},
            {std::min(y1, y2), std::max(y1, y2)}});
    size_t expected = 0;
    for (const auto& t : all) {
      if (q.Contains(t.point)) ++expected;
    }
    EXPECT_EQ(store.Count(q), expected) << q.ToString();
  }
}

TEST(TupleStoreTest, BalancedCutsSameResults) {
  // Query results must not depend on the embedding.
  Rng rng(37);
  Schema s = MakeSchema();
  Histogram h(s, 16);
  std::vector<Tuple> all;
  for (int i = 0; i < 3000; ++i) {
    Value x = rng.Uniform(200);  // heavy skew
    Value y = rng.Uniform(10000);
    all.push_back(MakeTuple(x, y, 0, i));
    h.Add(all.back().point);
  }
  auto balanced = CutTree::Balanced(s, h, 8);
  ASSERT_TRUE(balanced.ok());
  TupleStore even_store(EvenCuts(), 24);
  TupleStore bal_store(std::make_shared<CutTree>(std::move(balanced).value()), 24);
  for (const auto& t : all) {
    even_store.Insert(t);
    bal_store.Insert(t);
  }
  for (int iter = 0; iter < 30; ++iter) {
    Value x1 = rng.Uniform(250), x2 = rng.Uniform(250);
    Rect q({{std::min(x1, x2), std::max(x1, x2)}, {0, 9999}});
    EXPECT_EQ(even_store.Count(q), bal_store.Count(q));
  }
}

TEST(TupleStoreTest, InterleavedInsertAndQuery) {
  TupleStore store(EvenCuts(), 24);
  Rect all({{0, 9999}, {0, 9999}});
  for (int i = 0; i < 100; ++i) {
    store.Insert(MakeTuple(i * 97 % 10000, i * 31 % 10000, 0, i));
    EXPECT_EQ(store.Count(all), static_cast<size_t>(i + 1));
  }
}

TEST(TupleStoreTest, ApproxBytesGrows) {
  TupleStore store(EvenCuts(), 24);
  EXPECT_EQ(store.approx_bytes(), 0u);
  store.Insert(MakeTuple(1, 1));
  uint64_t b1 = store.approx_bytes();
  store.Insert(MakeTuple(2, 2));
  EXPECT_GT(store.approx_bytes(), b1);
}

TEST(TupleStoreTest, BuildHistogramCountsAll) {
  TupleStore store(EvenCuts(), 24);
  for (int i = 0; i < 100; ++i) store.Insert(MakeTuple(i, i));
  Histogram h = store.BuildHistogram(8);
  EXPECT_DOUBLE_EQ(h.total_mass(), 100.0);
  EXPECT_EQ(h.schema(), MakeSchema());
}

// ------------------------------------------------------- two-level layout

// Every layout (never compacted / auto-compacted / freshly compacted) must
// answer queries and digest identically: compaction is observable only
// through base_size()/delta_size().
TEST(TupleStoreTest, CompactionIsLayoutOnly) {
  Rng rng(41);
  TupleStoreConfig off_cfg;
  off_cfg.code_len = 24;
  off_cfg.options.compaction = false;
  auto cuts = EvenCuts();
  TupleStore auto_store(cuts, 24);          // default: compaction on
  TupleStore off_store(cuts, off_cfg);      // everything stays in the delta
  TupleStore manual_store(cuts, off_cfg);   // compacted by hand mid-stream
  for (int i = 0; i < 1000; ++i) {
    Tuple t = MakeTuple(rng.Uniform(10000), rng.Uniform(10000), 0, i);
    auto_store.Insert(t);
    off_store.Insert(t);
    manual_store.Insert(t);
    if (i % 137 == 0) manual_store.Compact();
  }
  EXPECT_GT(auto_store.base_size(), 0u);    // the ratio trigger fired
  EXPECT_EQ(off_store.base_size(), 0u);     // it never does with compaction off
  EXPECT_EQ(off_store.delta_size(), 1000u);
  for (int iter = 0; iter < 30; ++iter) {
    Value x1 = rng.Uniform(10000), x2 = rng.Uniform(10000);
    Value y1 = rng.Uniform(10000), y2 = rng.Uniform(10000);
    Rect q({{std::min(x1, x2), std::max(x1, x2)},
            {std::min(y1, y2), std::max(y1, y2)}});
    size_t expect = off_store.Count(q);
    EXPECT_EQ(auto_store.Count(q), expect) << q.ToString();
    EXPECT_EQ(manual_store.Count(q), expect) << q.ToString();
  }
  Fnv64 d_auto, d_off, d_manual;
  auto_store.DigestInto(&d_auto);
  off_store.DigestInto(&d_off);
  manual_store.DigestInto(&d_manual);
  EXPECT_EQ(d_auto.value(), d_off.value());
  EXPECT_EQ(d_auto.value(), d_manual.value());
  EXPECT_TRUE(auto_store.ValidateInvariants().ok());
  EXPECT_TRUE(off_store.ValidateInvariants().ok());
  EXPECT_TRUE(manual_store.ValidateInvariants().ok());
}

TEST(TupleStoreTest, DeltaBaseBoundaryAndEmptyRunEdges) {
  TupleStore store(EvenCuts(), 24);
  Rect all({{0, 9999}, {0, 9999}});
  // Both runs empty.
  EXPECT_EQ(store.Count(all), 0u);
  store.Compact();  // compacting nothing is a no-op
  EXPECT_EQ(store.size(), 0u);
  // Delta only.
  store.Insert(MakeTuple(10, 10, 0, 1));
  EXPECT_EQ(store.base_size(), 0u);
  EXPECT_EQ(store.Count(all), 1u);
  // Base only.
  store.Compact();
  EXPECT_EQ(store.base_size(), 1u);
  EXPECT_EQ(store.delta_size(), 0u);
  EXPECT_EQ(store.Count(all), 1u);
  // Straddling: the same key can live in both runs at once; queries must see
  // both copies (distinct seqs — de-dup is the originator's job, not ours).
  store.Insert(MakeTuple(10, 10, 0, 2));
  EXPECT_EQ(store.base_size(), 1u);
  EXPECT_EQ(store.delta_size(), 1u);
  EXPECT_EQ(store.Count(Rect({{10, 10}, {10, 10}})), 2u);
  EXPECT_EQ(store.Count(all), 2u);
}

TEST(TupleStoreTest, FreezeCompactionAtVersionBoundary) {
  TupleStoreConfig cfg;
  cfg.code_len = 24;
  IndexVersions v(cfg);
  ASSERT_TRUE(v.AddVersion(1, EvenCuts(), 0).ok());
  for (int i = 0; i < 10; ++i) v.Store(1)->Insert(MakeTuple(i, i, 0, i));
  EXPECT_EQ(v.Store(1)->delta_size(), 10u);  // below the ratio trigger
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  EXPECT_EQ(v.Store(1)->delta_size(), 0u);   // frozen down at the boundary
  EXPECT_EQ(v.Store(1)->base_size(), 10u);
}

// ------------------------------------------------------------ cover cache

TEST(CoverCacheTest, RangesAreMergedSortedAndDisjoint) {
  auto cuts = EvenCuts();
  CoverRanges cr =
      ComputeCoverRanges(*cuts, Rect({{0, 4999}, {0, 9999}}), 12, 4096);
  ASSERT_FALSE(cr.fallback);
  ASSERT_FALSE(cr.ranges.empty());
  for (size_t i = 0; i < cr.ranges.size(); ++i) {
    EXPECT_LE(cr.ranges[i].lo, cr.ranges[i].hi);
    // Strictly separated: abutting neighbours would have been merged.
    if (i > 0) {
      EXPECT_GT(cr.ranges[i].lo, cr.ranges[i - 1].hi + 1);
    }
  }
  // The half-domain rect covers one subtree: codes 0xx... merge to one range.
  EXPECT_EQ(cr.ranges.size(), 1u);
}

TEST(CoverCacheTest, HitsMissesAndInvalidation) {
  telemetry::MetricsRegistry metrics;
  CoverCache cache(&metrics);
  auto cuts = EvenCuts();
  Rect q({{0, 999}, {0, 999}});
  const CoverRanges* a = cache.GetOrCompute(q, cuts, 12, 4096);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  const CoverRanges* b = cache.GetOrCompute(q, cuts, 12, 4096);
  EXPECT_EQ(a, b);  // served from the table, not recomputed
  // Same rect, different length or different tree: distinct entries.
  cache.GetOrCompute(q, cuts, 10, 4096);
  cache.GetOrCompute(q, EvenCuts(), 12, 4096);
  EXPECT_EQ(cache.size(), 3u);
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_EQ(metrics.counter("storage.cover_cache.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("storage.cover_cache.misses").value(), 3u);
#endif
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  cache.GetOrCompute(q, cuts, 12, 4096);
  EXPECT_EQ(cache.size(), 1u);  // repopulated after the epoch clear
}

TEST(CoverCacheTest, CachedAndUncachedScansAgree) {
  Rng rng(43);
  auto cuts = EvenCuts();
  CoverCache cache;
  TupleStoreConfig cached_cfg;
  cached_cfg.code_len = 24;
  cached_cfg.cover_cache = &cache;
  TupleStore cached(cuts, cached_cfg);
  TupleStore plain(cuts, 24);
  for (int i = 0; i < 2000; ++i) {
    Tuple t = MakeTuple(rng.Uniform(10000), rng.Uniform(10000), 0, i);
    cached.Insert(t);
    plain.Insert(t);
  }
  for (int iter = 0; iter < 40; ++iter) {
    Value x1 = rng.Uniform(10000), x2 = rng.Uniform(10000);
    Value y1 = rng.Uniform(10000), y2 = rng.Uniform(10000);
    Rect q({{std::min(x1, x2), std::max(x1, x2)},
            {std::min(y1, y2), std::max(y1, y2)}});
    EXPECT_EQ(cached.Count(q), plain.Count(q)) << q.ToString();
    // Re-probe: the second scan is served from the cache and must agree too.
    EXPECT_EQ(cached.Count(q), plain.Count(q)) << q.ToString();
  }
  EXPECT_GT(cache.size(), 0u);
}

TEST(CoverCacheTest, CoverOverflowTakesFallbackAndStaysCorrect) {
  telemetry::MetricsRegistry metrics;
  Rng rng(47);
  TupleStoreConfig cfg;
  cfg.code_len = 24;
  cfg.options.max_cover_codes = 4;  // force overflow on fragmented covers
  cfg.metrics = &metrics;
  TupleStore store(EvenCuts(), cfg);
  TupleStore plain(EvenCuts(), 24);
  for (int i = 0; i < 500; ++i) {
    Tuple t = MakeTuple(rng.Uniform(10000), rng.Uniform(10000), 0, i);
    store.Insert(t);
    plain.Insert(t);
  }
  // A rect clipped on both dims fragments into >4 codes at cover_len 12.
  Rect q({{1, 9998}, {1, 9998}});
  EXPECT_EQ(store.Count(q), plain.Count(q));
#ifndef MIND_TELEMETRY_DISABLED
  EXPECT_GE(metrics.counter("storage.cover.fallback").value(), 1u);
#endif
}

// ---------------------------------------------------------- index backends

TupleStoreConfig BackendConfig(IndexBackendKind kind) {
  TupleStoreConfig cfg;
  cfg.code_len = 24;
  cfg.options.backend = kind;
  return cfg;
}

// Every backend must answer every query identically — same matches, same
// rows examined (the sim's latency model never sees the layout) — and fold
// to the same digest (docs/BACKENDS.md digest-transparency rule).
TEST(IndexBackendTest, BackendsAnswerIdentically) {
  Rng rng(53);
  auto cuts = EvenCuts();
  TupleStore sorted(cuts, BackendConfig(IndexBackendKind::kSortedRuns));
  TupleStore bitmap(cuts, BackendConfig(IndexBackendKind::kBitmap));
  TupleStore adaptive(cuts, BackendConfig(IndexBackendKind::kAdaptive));
  EXPECT_EQ(sorted.backend_kind(), IndexBackendKind::kSortedRuns);
  EXPECT_EQ(bitmap.backend_kind(), IndexBackendKind::kBitmap);
  // Cold adaptive stats resolve to the sorted default.
  EXPECT_EQ(adaptive.backend_kind(), IndexBackendKind::kSortedRuns);
  std::vector<Tuple> all;
  for (int i = 0; i < 5000; ++i) {
    Value x = rng.Bernoulli(0.7) ? rng.Uniform(100) : rng.Uniform(10000);
    Tuple t = MakeTuple(x, rng.Uniform(10000), 0, i);
    all.push_back(t);
    sorted.Insert(t);
    bitmap.Insert(t);
    adaptive.Insert(t);
  }
  for (int iter = 0; iter < 50; ++iter) {
    Value x1 = rng.Uniform(10000), x2 = rng.Uniform(10000);
    Value y1 = rng.Uniform(10000), y2 = rng.Uniform(10000);
    Rect q({{std::min(x1, x2), std::max(x1, x2)},
            {std::min(y1, y2), std::max(y1, y2)}});
    size_t expected = 0;
    for (const auto& t : all) {
      if (q.Contains(t.point)) ++expected;
    }
    EXPECT_EQ(sorted.Count(q), expected) << q.ToString();
    EXPECT_EQ(bitmap.Count(q), expected) << q.ToString();
    EXPECT_EQ(adaptive.Count(q), expected) << q.ToString();
  }
  // Same pruning power: with bucket-aligned covers (default cover_len) the
  // bitmap visits exactly the rows the sorted runs binary-search to.
  EXPECT_EQ(bitmap.scan_rows_examined(), sorted.scan_rows_examined());
  EXPECT_EQ(bitmap.scan_rows_matched(), sorted.scan_rows_matched());
  Fnv64 d_sorted, d_bitmap, d_adaptive;
  sorted.DigestInto(&d_sorted);
  bitmap.DigestInto(&d_bitmap);
  adaptive.DigestInto(&d_adaptive);
  EXPECT_EQ(d_sorted.value(), d_bitmap.value());
  EXPECT_EQ(d_sorted.value(), d_adaptive.value());
  EXPECT_DOUBLE_EQ(sorted.BuildHistogram(8).total_mass(),
                   bitmap.BuildHistogram(8).total_mass());
  EXPECT_TRUE(bitmap.ValidateInvariants().ok());
}

TEST(RleBitmapTest, SparsePositionsRoundTrip) {
  RleBitmap bm;
  std::vector<uint64_t> expect = {0, 1, 5, 62, 63, 64, 200, 6299, 6300, 100000};
  for (uint64_t p : expect) bm.Set(p);
  EXPECT_EQ(bm.cardinality(), expect.size());
  std::vector<uint64_t> got;
  bm.ForEachSet([&](uint64_t p) { got.push_back(p); });
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(bm.Validate("test", 0).ok());
}

TEST(RleBitmapTest, FillWordsMergeAcrossChunks) {
  RleBitmap bm;
  // Two complete all-ones chunks (bits 0..125) followed by a long zero gap.
  for (uint64_t p = 0; p < 126; ++p) bm.Set(p);
  bm.Set(63 * 1000);
  // Encoding: one merged ones-fill (run 2), one zero-fill (run 998), plus
  // the active chunk — adjacent compatible fills must coalesce.
  EXPECT_EQ(bm.words(), 3u);
  EXPECT_EQ(bm.cardinality(), 127u);
  uint64_t seen = 0, last = 0;
  bm.ForEachSet([&](uint64_t p) {
    ++seen;
    last = p;
  });
  EXPECT_EQ(seen, 127u);
  EXPECT_EQ(last, 63u * 1000);
  EXPECT_TRUE(bm.Validate("test", 0).ok());
}

TEST(RleBitmapTest, MixedLiteralsBetweenFills) {
  RleBitmap bm;
  bm.Set(1);            // chunk 0: literal (not all ones)
  bm.Set(70);           // chunk 1: literal
  for (uint64_t p = 126; p < 189; ++p) bm.Set(p);  // chunk 2: ones fill
  bm.Set(63 * 50 + 3);  // zero-fill gap then new active chunk
  std::vector<uint64_t> got;
  bm.ForEachSet([&](uint64_t p) { got.push_back(p); });
  std::vector<uint64_t> expect = {1, 70};
  for (uint64_t p = 126; p < 189; ++p) expect.push_back(p);
  expect.push_back(63 * 50 + 3);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(bm.cardinality(), expect.size());
  EXPECT_TRUE(bm.Validate("test", 0).ok());
}

TEST(IndexBackendTest, BitmapEmptyBucketAndFullRangeEdges) {
  TupleStore store(EvenCuts(), BackendConfig(IndexBackendKind::kBitmap));
  Rect all({{0, 9999}, {0, 9999}});
  // Empty store: no buckets to walk at all.
  EXPECT_EQ(store.Count(all), 0u);
  store.Compact();  // a no-op for bitmaps, never an error
  // Two far-apart clusters leave the buckets between them empty; a query
  // spanning the gap must skip the empty buckets and still see both sides.
  for (int i = 0; i < 40; ++i) {
    store.Insert(MakeTuple(5, 5, 0, i));
    store.Insert(MakeTuple(9990, 9990, 0, 1000 + i));
  }
  EXPECT_EQ(store.Count(all), 80u);  // full-domain rect: root-cover fast path
  EXPECT_EQ(store.Count(Rect({{0, 99}, {0, 99}})), 40u);
  EXPECT_EQ(store.Count(Rect({{9900, 9999}, {9900, 9999}})), 40u);
  // Entirely inside the empty middle: hits only absent buckets.
  EXPECT_EQ(store.Count(Rect({{4000, 6000}, {4000, 6000}})), 0u);
  EXPECT_EQ(store.base_size(), store.size());  // non-sorted layout reporting
  EXPECT_EQ(store.delta_size(), 0u);
  EXPECT_TRUE(store.ValidateInvariants().ok());
}

TEST(IndexBackendTest, AdaptiveCostModelPicksByWorkloadMix) {
  // Cold chain: no evidence, stay on the default.
  EXPECT_EQ(ChooseIndexBackend(BackendWorkloadStats{}),
            IndexBackendKind::kSortedRuns);
  // Ingest-heavy, queries rare: append-only bitmaps dodge the merge tax.
  BackendWorkloadStats ingest;
  ingest.rows = 200000;
  ingest.queries = 10;
  ingest.cover_ranges = 40;
  ingest.rows_examined = 2000;
  ingest.rows_matched = 1500;
  EXPECT_EQ(ChooseIndexBackend(ingest), IndexBackendKind::kBitmap);
  // Query-heavy with wide scans: the per-row visit premium dominates.
  BackendWorkloadStats scans;
  scans.rows = 1000;
  scans.queries = 5000;
  scans.cover_ranges = 20000;
  scans.rows_examined = 4000000;
  scans.rows_matched = 3000000;
  EXPECT_EQ(ChooseIndexBackend(scans), IndexBackendKind::kSortedRuns);
  const BackendCostEstimate ci = EstimateBackendCosts(ingest);
  EXPECT_LT(ci.bitmap, ci.sorted);
  const BackendCostEstimate cs = EstimateBackendCosts(scans);
  EXPECT_LT(cs.sorted, cs.bitmap);
}

TEST(IndexBackendTest, AdaptiveHandsWorkloadStatsAcrossVersionFreeze) {
  TupleStoreConfig cfg = BackendConfig(IndexBackendKind::kAdaptive);
  IndexVersions v(cfg);
  ASSERT_TRUE(v.AddVersion(1, EvenCuts(), 0).ok());
  // Day 1 opens cold -> sorted, and sees an ingest-heavy day.
  EXPECT_EQ(v.Store(1)->backend_kind(), IndexBackendKind::kSortedRuns);
  for (int i = 0; i < 5000; ++i) {
    v.Store(1)->Insert(MakeTuple(i % 10000, (i * 7) % 10000, 0, i));
  }
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  // Day 2 inherits day 1's evidence and flips to the bitmap layout.
  EXPECT_EQ(v.Store(2)->backend_kind(), IndexBackendKind::kBitmap);
  // Day 2 is query-hammered; day 3 flips back.
  Rect narrow({{0, 9}, {0, 9999}});
  v.Store(2)->Insert(MakeTuple(5, 5, 0, 0));
  for (int i = 0; i < 20000; ++i) (void)v.Store(2)->Count(narrow);
  ASSERT_TRUE(v.AddVersion(3, EvenCuts(), 2 * kUsPerDay).ok());
  EXPECT_EQ(v.Store(3)->backend_kind(), IndexBackendKind::kSortedRuns);
  EXPECT_TRUE(v.ValidateInvariants().ok());
}

// ---------------------------------------------------------------- Versions

TEST(IndexVersionsTest, AddAndLookupByTime) {
  IndexVersions v(24);
  EXPECT_EQ(v.StoreForTime(0), nullptr);
  EXPECT_FALSE(v.LatestVersion().has_value());
  ASSERT_TRUE(v.AddVersion(1, EvenCuts(), 0).ok());
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  EXPECT_EQ(v.LatestVersion().value(), 2u);
  EXPECT_EQ(v.StoreForTime(100), v.Store(1));
  EXPECT_EQ(v.StoreForTime(kUsPerDay), v.Store(2));
  EXPECT_EQ(v.StoreForTime(2 * kUsPerDay), v.Store(2));
  EXPECT_NE(v.Store(1), v.Store(2));
  EXPECT_EQ(v.Store(99), nullptr);
}

TEST(IndexVersionsTest, RejectsBadOrder) {
  IndexVersions v(24);
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  EXPECT_TRUE(v.AddVersion(2, EvenCuts(), 2 * kUsPerDay).IsInvalidArgument());
  EXPECT_TRUE(v.AddVersion(1, EvenCuts(), 2 * kUsPerDay).IsInvalidArgument());
  EXPECT_TRUE(v.AddVersion(3, EvenCuts(), 0).IsInvalidArgument());
  EXPECT_TRUE(v.AddVersion(3, nullptr, 2 * kUsPerDay).IsInvalidArgument());
}

TEST(IndexVersionsTest, VersionsOverlapping) {
  IndexVersions v(24);
  ASSERT_TRUE(v.AddVersion(1, EvenCuts(), 0).ok());
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  ASSERT_TRUE(v.AddVersion(3, EvenCuts(), 2 * kUsPerDay).ok());
  // Entirely within day 1.
  EXPECT_EQ(v.VersionsOverlapping(100, 200), (std::vector<VersionId>{1}));
  // Spanning days 1-2.
  EXPECT_EQ(v.VersionsOverlapping(kUsPerDay - 10, kUsPerDay + 10),
            (std::vector<VersionId>{1, 2}));
  // All three.
  EXPECT_EQ(v.VersionsOverlapping(0, 3 * kUsPerDay),
            (std::vector<VersionId>{1, 2, 3}));
  // Open-ended tail.
  EXPECT_EQ(v.VersionsOverlapping(10 * kUsPerDay, 11 * kUsPerDay),
            (std::vector<VersionId>{3}));
}

TEST(IndexVersionsTest, StoresAreIsolatedPerVersion) {
  IndexVersions v(24);
  ASSERT_TRUE(v.AddVersion(1, EvenCuts(), 0).ok());
  ASSERT_TRUE(v.AddVersion(2, EvenCuts(), kUsPerDay).ok());
  v.Store(1)->Insert(MakeTuple(1, 1));
  v.Store(2)->Insert(MakeTuple(2, 2));
  v.Store(2)->Insert(MakeTuple(3, 3));
  EXPECT_EQ(v.Store(1)->size(), 1u);
  EXPECT_EQ(v.Store(2)->size(), 2u);
  EXPECT_EQ(v.TotalTuples(), 3u);
  EXPECT_GT(v.TotalBytes(), 0u);
}

TEST(IndexVersionsTest, CutsAccessor) {
  IndexVersions v(24);
  auto cuts = EvenCuts();
  ASSERT_TRUE(v.AddVersion(1, cuts, 0).ok());
  EXPECT_EQ(v.Cuts(1), cuts);
  EXPECT_EQ(v.Cuts(2), nullptr);
}

// ----------------------------------------------------------- scan kernels

// The branch-free kernels must agree with std::lower_bound/std::upper_bound
// on every probe, prefetch on or off: duplicates, misses, below-front,
// beyond-back, empty and single-element arrays.
TEST(ScanKernelTest, BoundsMatchStdOnAdversarialArrays) {
  Rng rng(0xb07);
  std::vector<scan::KeyColumn> arrays;
  arrays.push_back({});                     // empty
  arrays.push_back({42});                   // singleton
  arrays.push_back({7, 7, 7, 7, 7});        // all duplicates
  scan::KeyColumn random;
  for (int i = 0; i < 1000; ++i) {
    random.push_back(rng.Uniform(500) * 3);  // gaps and repeats
  }
  std::sort(random.begin(), random.end());
  arrays.push_back(std::move(random));
  for (const auto& keys : arrays) {
    for (uint64_t probe = 0; probe < 1600; probe += 7) {
      const auto expect_lo = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
      const auto expect_hi = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), probe) - keys.begin());
      EXPECT_EQ(scan::LowerBound<true>(keys.data(), keys.size(), probe),
                expect_lo);
      EXPECT_EQ(scan::LowerBound<false>(keys.data(), keys.size(), probe),
                expect_lo);
      EXPECT_EQ(scan::UpperBound<true>(keys.data(), keys.size(), probe),
                expect_hi);
      EXPECT_EQ(scan::UpperBound<false>(keys.data(), keys.size(), probe),
                expect_hi);
    }
  }
}

TEST(ScanKernelTest, RangeBoundsCoverInclusiveRanges) {
  scan::KeyColumn keys = {10, 20, 20, 30, 40, 40, 40, 50};
  auto check = [&](uint64_t lo, uint64_t hi, size_t b, size_t e) {
    const auto [rb, re] =
        scan::RangeBounds<true>(keys.data(), keys.size(), lo, hi);
    EXPECT_EQ(rb, b) << "[" << lo << "," << hi << "]";
    EXPECT_EQ(re, e) << "[" << lo << "," << hi << "]";
  };
  check(20, 40, 1, 7);   // both endpoints duplicated
  check(0, 5, 0, 0);     // below front
  check(55, 99, 8, 8);   // beyond back
  check(10, 50, 0, 8);   // exact full span
  check(21, 29, 3, 3);   // empty interior gap
  check(0, UINT64_MAX, 0, 8);
}

TEST(ScanKernelTest, KeyColumnsAreCacheLineAligned) {
  scan::KeyColumn keys;
  keys.resize(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(keys.data()) % scan::kCacheLineBytes,
            0u);
}

}  // namespace
}  // namespace mind
