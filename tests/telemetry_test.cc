// Telemetry subsystem tests: registry semantics, histogram percentile
// accuracy against the exact definition, span-tree assembly and flight
// recorder eviction, and exporter schema round-trips through the bundled
// JSON parser.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/stats.h"
#include "telemetry/trace.h"

namespace mind {
namespace telemetry {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, InstrumentsAreNamedAndStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);  // same name, same instrument
  Gauge& g = reg.gauge("x.level");
  SimHistogram& h = reg.histogram("x.wait_ms");
  EXPECT_EQ(&g, &reg.gauge("x.level"));
  EXPECT_EQ(&h, &reg.histogram("x.wait_ms"));

  EXPECT_NE(reg.FindCounter("x.count"), nullptr);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_NE(reg.FindGauge("x.level"), nullptr);
  EXPECT_NE(reg.FindHistogram("x.wait_ms"), nullptr);
}

#ifndef MIND_TELEMETRY_DISABLED

TEST(MetricsRegistryTest, CounterAndGaugeRecord) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge& g = reg.gauge("g");
  g.Set(3.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  SimHistogram& h = reg.histogram("h");
  reg.set_enabled(false);
  c.Inc(100);
  reg.gauge("g").Set(9);
  h.Record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  reg.set_enabled(true);
  c.Inc();
  h.Record(2.0);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  SimHistogram& h = reg.histogram("h");
  c.Inc(7);
  h.Record(12.0);
  reg.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &reg.counter("c"));
}

// --------------------------------------------------------------- histogram

TEST(SimHistogramTest, BasicMoments) {
  MetricsRegistry reg;
  SimHistogram& h = reg.histogram("h");
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(SimHistogramTest, PercentilesTrackExactWithinBucketError) {
  MetricsRegistry reg;
  SimHistogram& h = reg.histogram("h");  // growth 1.07 -> ~7% relative error
  std::vector<double> exact;
  uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    // xorshift: deterministic heavy-ish tail spanning several decades
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    double u = static_cast<double>(state % 1000000) / 1e6;
    double v = 0.1 + 5000.0 * u * u * u;  // 0.1 .. 5000 ms, skewed low
    h.Record(v);
    exact.push_back(v);
  }
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    double want = Percentile(exact, p);
    double got = h.Percentile(p);
    EXPECT_NEAR(got, want, 0.08 * want + 1e-9)
        << "p" << p << " exact=" << want << " hist=" << got;
  }
  // Extremes clamp to observed range.
  EXPECT_DOUBLE_EQ(h.Percentile(0), h.min());
  EXPECT_DOUBLE_EQ(h.Percentile(100), h.max());
}

TEST(SimHistogramTest, OverflowBucketUsesObservedMax) {
  MetricsRegistry reg;
  SimHistogram& h = reg.histogram("h", HistogramOptions{1e-3, 1.07, 8});
  h.Record(1e9);  // way past the last bound
  h.Record(2e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 2e9);
  EXPECT_LE(h.Percentile(99), 2e9);
  EXPECT_GE(h.Percentile(99), 1e9 * 0.5);
}

TEST(StatsTest, PercentileExactDefinition) {
  std::vector<double> v = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, SpanTreeAssembly) {
  SimTime now = 0;
  Tracer tr([&now] { return now; });
  uint64_t root = tr.StartSpan(7, "query", 0, 1);
  now = 10;
  uint64_t split = tr.StartSpan(7, "query.split", root, 1);
  now = 20;
  uint64_t resolve = tr.StartSpan(7, "query.resolve", split, 2);
  tr.Note(resolve, "tuples", "5");
  now = 30;
  tr.EndSpan(resolve);
  tr.EndSpan(split);
  now = 45;
  tr.EndSpan(root);

  const std::vector<TraceSpan>* spans = tr.GetTrace(7);
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 3u);
  EXPECT_EQ((*spans)[0].name, "query");
  EXPECT_EQ((*spans)[0].start, 0u);
  EXPECT_EQ((*spans)[0].end, 45u);
  EXPECT_TRUE((*spans)[0].closed);

  std::vector<SpanNode> tree = tr.Tree(7);
  ASSERT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree[0].span->name, "query");
  ASSERT_EQ(tree[0].children.size(), 1u);
  EXPECT_EQ(tree[0].children[0].span->name, "query.split");
  ASSERT_EQ(tree[0].children[0].children.size(), 1u);
  const SpanNode& leaf = tree[0].children[0].children[0];
  EXPECT_EQ(leaf.span->name, "query.resolve");
  EXPECT_EQ(leaf.span->node, 2);
  ASSERT_EQ(leaf.span->notes.size(), 1u);
  EXPECT_EQ(leaf.span->notes[0].first, "tuples");
  EXPECT_EQ(leaf.span->notes[0].second, "5");

  EXPECT_EQ(tr.GetTrace(999), nullptr);
  std::string dump = tr.Dump(7);
  EXPECT_NE(dump.find("query.resolve"), std::string::npos);
}

TEST(TracerTest, RingEvictsOldestTrace) {
  SimTime now = 0;
  Tracer tr([&now] { return now; }, /*max_traces=*/4);
  for (uint64_t t = 1; t <= 6; ++t) {
    tr.EndSpan(tr.StartSpan(t, "op", 0, 0));
  }
  EXPECT_EQ(tr.trace_count(), 4u);
  EXPECT_EQ(tr.traces_evicted(), 2u);
  EXPECT_EQ(tr.GetTrace(1), nullptr);  // oldest two gone
  EXPECT_EQ(tr.GetTrace(2), nullptr);
  EXPECT_NE(tr.GetTrace(3), nullptr);
  EXPECT_NE(tr.GetTrace(6), nullptr);
}

TEST(TracerTest, DisabledTracerReturnsNoOpHandles) {
  SimTime now = 0;
  Tracer tr([&now] { return now; });
  tr.set_enabled(false);
  uint64_t s = tr.StartSpan(1, "op");
  EXPECT_EQ(s, 0u);
  tr.EndSpan(s);    // accepts the no-op handle
  tr.Note(s, "k", "v");
  EXPECT_EQ(tr.trace_count(), 0u);
}

TEST(TracerTest, PerTraceSpanCap) {
  SimTime now = 0;
  Tracer tr([&now] { return now; }, 8, /*max_spans_per_trace=*/4);
  for (int i = 0; i < 10; ++i) tr.StartSpan(1, "op");
  ASSERT_NE(tr.GetTrace(1), nullptr);
  EXPECT_EQ(tr.GetTrace(1)->size(), 4u);
  EXPECT_EQ(tr.spans_dropped(), 6u);
}

#endif  // MIND_TELEMETRY_DISABLED

// -------------------------------------------------------------------- json

TEST(JsonTest, ParseRoundTrip) {
  const char* doc =
      "{\"a\": [1, 2.5, true, null, \"s\\n\"], \"b\": {\"c\": -3e2}}";
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 5u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
  EXPECT_TRUE(a->items()[2].as_bool());
  EXPECT_TRUE(a->items()[3].is_null());
  EXPECT_EQ(a->items()[4].as_string(), "s\n");
  const JsonValue* c = v.GetPath("b.c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->as_number(), -300.0);

  // Serialize -> reparse -> identical serialization (stable form).
  std::string s1 = v.ToString();
  auto reparsed = JsonValue::Parse(s1);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), s1);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

// --------------------------------------------------------------- exporters

RunMeta TestMeta() {
  RunMeta meta;
  meta.bench = "unit";
  meta.seed = 31337;
  meta.topology = "flat";
  meta.nodes = 8;
  meta.extra["note"] = "round-trip";
  return meta;
}

TEST(JsonExporterTest, SchemaRoundTrip) {
  MetricsRegistry reg;
#ifndef MIND_TELEMETRY_DISABLED
  reg.counter("a.count").Inc(3);
  reg.gauge("a.level").Set(1.25);
  SimHistogram& h = reg.histogram("a.wait_ms");
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0}) h.Record(v);
#else
  reg.counter("a.count");
  reg.gauge("a.level");
  reg.histogram("a.wait_ms");
#endif

  std::string doc = JsonExporter::Export(reg, TestMeta());
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;

  // Required keys of schema_version 1 — this is the regression guard that a
  // bench-style export stays machine-readable.
  ASSERT_NE(v.Get("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(v.Get("schema_version")->as_number(), 1.0);
  ASSERT_NE(v.Get("bench"), nullptr);
  EXPECT_EQ(v.Get("bench")->as_string(), "unit");
  ASSERT_NE(v.GetPath("meta.seed"), nullptr);
  EXPECT_DOUBLE_EQ(v.GetPath("meta.seed")->as_number(), 31337.0);
  ASSERT_NE(v.GetPath("meta.topology"), nullptr);
  ASSERT_NE(v.GetPath("meta.nodes"), nullptr);
  ASSERT_NE(v.GetPath("meta.note"), nullptr);
  ASSERT_NE(v.Get("counters"), nullptr);
  ASSERT_NE(v.Get("gauges"), nullptr);
  ASSERT_NE(v.Get("histograms"), nullptr);

  // Run-environment block: every export says what machine-shape produced it.
  for (const char* key : {"threads", "duty", "build_type", "git_sha"}) {
    ASSERT_NE(v.GetPath((std::string("run.") + key).c_str()), nullptr)
        << "missing run field " << key;
  }
  EXPECT_DOUBLE_EQ(v.GetPath("run.threads")->as_number(), 0.0);
  EXPECT_NE(v.GetPath("run.git_sha")->as_string(), "");

  // Metric names contain dots, so index them with plain Get, not GetPath.
  const JsonValue* hj = v.Get("histograms")->Get("a.wait_ms");
  ASSERT_NE(hj, nullptr);
  for (const char* key : {"count", "sum", "min", "max", "mean", "p50", "p90",
                          "p99"}) {
    ASSERT_NE(hj->Get(key), nullptr) << "missing histogram field " << key;
  }
#ifndef MIND_TELEMETRY_DISABLED
  // Snapshot values match the live instruments exactly.
  const JsonValue* cj = v.Get("counters")->Get("a.count");
  ASSERT_NE(cj, nullptr);
  EXPECT_DOUBLE_EQ(cj->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(hj->Get("count")->as_number(),
                   static_cast<double>(h.count()));
  EXPECT_DOUBLE_EQ(hj->Get("p50")->as_number(), h.Percentile(50));
  EXPECT_DOUBLE_EQ(hj->Get("p90")->as_number(), h.Percentile(90));
  EXPECT_DOUBLE_EQ(hj->Get("p99")->as_number(), h.Percentile(99));
#endif
}

TEST(JsonExporterTest, DefaultPathIsBenchName) {
  EXPECT_EQ(JsonExporter::DefaultPath(TestMeta()), "BENCH_unit.json");
}

TEST(CsvExporterTest, FlatRowsParse) {
  MetricsRegistry reg;
#ifndef MIND_TELEMETRY_DISABLED
  reg.counter("a.count").Inc(2);
#else
  reg.counter("a.count");
#endif
  std::string csv = CsvExporter::Export(reg, TestMeta());
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("meta,unit,seed,31337"), std::string::npos);
  EXPECT_NE(csv.find("counter,a.count,value,"), std::string::npos);
}

}  // namespace
}  // namespace telemetry
}  // namespace mind
