#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "space/histogram.h"
#include "space/mismatch.h"
#include "traffic/aggregator.h"
#include "traffic/anomaly_injector.h"
#include "traffic/flow_generator.h"
#include "traffic/indices.h"
#include "traffic/topology.h"
#include "traffic/trace_io.h"

namespace mind {
namespace {

// ---------------------------------------------------------------- Topology

TEST(TopologyTest, SizesMatchPaper) {
  EXPECT_EQ(Topology::Abilene().size(), 11u);
  EXPECT_EQ(Topology::Geant().size(), 23u);
  EXPECT_EQ(Topology::AbileneGeant().size(), 34u);
}

TEST(TopologyTest, FindRouterAndPositions) {
  Topology t = Topology::Abilene();
  int chin = t.FindRouter("CHIN");
  ASSERT_GE(chin, 0);
  EXPECT_EQ(t.router(chin).city, "Chicago");
  EXPECT_EQ(t.FindRouter("NOPE"), -1);
  EXPECT_EQ(t.Positions().size(), 11u);
}

TEST(TopologyTest, GeographyIsSane) {
  // LOSA-NYCM about 3900 km; Abilene nodes all in North America.
  Topology t = Topology::Abilene();
  GeoPoint losa = t.router(t.FindRouter("LOSA")).position;
  GeoPoint nycm = t.router(t.FindRouter("NYCM")).position;
  EXPECT_NEAR(GreatCircleKm(losa, nycm), 3940, 150);
  for (const auto& r : t.routers()) {
    EXPECT_LT(r.position.lon_deg, -60);  // west of the Atlantic
  }
  // Bind the topology first: iterating Topology::Geant().routers() directly
  // would destroy the temporary before the loop body runs.
  Topology geant = Topology::Geant();
  for (const auto& r : geant.routers()) {
    EXPECT_GT(r.position.lon_deg, -12);  // Europe/Middle East
  }
}

TEST(TopologyTest, SamplingRates) {
  EXPECT_DOUBLE_EQ(Topology::SamplingRate(Backbone::kAbilene), 0.01);
  EXPECT_DOUBLE_EQ(Topology::SamplingRate(Backbone::kGeant), 0.001);
}

// ---------------------------------------------------------------- Generator

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : topo_(Topology::AbileneGeant()) {
    opts_.peak_flows_per_router_sec = 30;
    opts_.seed = 42;
    gen_ = std::make_unique<FlowGenerator>(topo_, opts_);
  }
  Topology topo_;
  FlowGeneratorOptions opts_;
  std::unique_ptr<FlowGenerator> gen_;
};

TEST_F(GeneratorTest, Deterministic) {
  FlowGenerator g2(topo_, opts_);
  auto a = gen_->GenerateVec(0, 3600, 3660);
  auto b = g2.GenerateVec(0, 3600, 3660);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src_ip, b[i].src_ip);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].router, b[i].router);
  }
}

TEST_F(GeneratorTest, RecordsWithinWindowAndValidRouters) {
  auto recs = gen_->GenerateVec(2, 7200, 7500);
  ASSERT_GT(recs.size(), 50u);
  for (const auto& f : recs) {
    EXPECT_GE(f.time_sec, 2 * 86400.0 + 7200);
    EXPECT_LT(f.time_sec, 2 * 86400.0 + 7500);
    EXPECT_GE(f.router, 0);
    EXPECT_LT(f.router, static_cast<int>(topo_.size()));
    EXPECT_GE(f.bytes, 40u);
    EXPECT_GE(f.packets, 1u);
  }
}

TEST_F(GeneratorTest, AbileneSeesMoreRecordsThanGeant) {
  // 1/100 vs 1/1000 sampling: Abilene routers report ~10x more records
  // (paper §4.2: "more flow record tuples were injected from Abilene nodes").
  auto recs = gen_->GenerateVec(0, 43200, 43800);
  size_t abilene = 0, geant = 0;
  for (const auto& f : recs) {
    if (topo_.router(f.router).backbone == Backbone::kAbilene) {
      ++abilene;
    } else {
      ++geant;
    }
  }
  // 11 Abilene vs 23 GÉANT routers; despite fewer routers Abilene dominates.
  EXPECT_GT(abilene, 2 * geant);
}

TEST_F(GeneratorTest, DiurnalRateVariation) {
  auto day = gen_->GenerateVec(0, 13 * 3600, 13 * 3600 + 600);
  auto night = gen_->GenerateVec(0, 2 * 3600, 2 * 3600 + 600);
  EXPECT_GT(day.size(), night.size());
}

TEST_F(GeneratorTest, FlowSizesHeavyTailed) {
  auto recs = gen_->GenerateVec(0, 50000, 50600);
  ASSERT_GT(recs.size(), 100u);
  std::vector<uint64_t> bytes;
  for (const auto& f : recs) bytes.push_back(f.bytes);
  std::sort(bytes.begin(), bytes.end());
  uint64_t median = bytes[bytes.size() / 2];
  uint64_t p99 = bytes[bytes.size() * 99 / 100];
  EXPECT_GT(p99, 20 * median) << "tail not heavy";
}

TEST_F(GeneratorTest, DayDriftBoundedRankChanges) {
  // Most prefixes keep their popularity rank across one day.
  size_t n = gen_->prefix_count();
  size_t same = 0;
  for (size_t i = 0; i < n; ++i) {
    if (gen_->RankOnDay(0, i) == gen_->RankOnDay(1, i)) ++same;
  }
  EXPECT_GT(static_cast<double>(same) / n, 0.75);
  // But across 10 days there is visible drift.
  size_t same10 = 0;
  for (size_t i = 0; i < n; ++i) {
    if (gen_->RankOnDay(0, i) == gen_->RankOnDay(10, i)) ++same10;
  }
  EXPECT_LT(same10, same);
}

TEST_F(GeneratorTest, PrefixHomingConsistent) {
  for (size_t i = 0; i < gen_->prefix_count(); ++i) {
    int home = gen_->HomeRouter(i);
    EXPECT_GE(home, 0);
    EXPECT_LT(home, static_cast<int>(topo_.size()));
  }
  // Flows from a prefix are observed at its home router.
  auto recs = gen_->GenerateVec(0, 30000, 30120);
  size_t matched = 0;
  for (const auto& f : recs) {
    // find src prefix index
    for (size_t i = 0; i < gen_->prefix_count(); ++i) {
      if (gen_->prefix(i).Contains(f.src_ip) &&
          gen_->HomeRouter(i) == f.router) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GT(matched, recs.size() / 3);  // src-side observations
}

// ---------------------------------------------------------------- Aggregator

TEST(AggregatorTest, GroupsByWindowAndPrefixPair) {
  Aggregator agg({30.0, 16, 300});
  FlowRecord f;
  f.src_ip = ParseIp("10.1.2.3").value();
  f.dst_ip = ParseIp("10.2.9.9").value();
  f.bytes = 1000;
  f.router = 0;
  f.dst_port = 80;
  f.time_sec = 5;
  agg.Add(f);
  f.src_ip = ParseIp("10.1.200.1").value();  // same /16
  f.bytes = 500;
  f.time_sec = 20;
  agg.Add(f);
  f.time_sec = 40;  // next window
  agg.Add(f);
  auto recs = agg.DrainAll();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].octets, 1500u);
  EXPECT_EQ(recs[0].flows, 2u);
  EXPECT_EQ(recs[0].window_start, 0u);
  EXPECT_EQ(recs[1].window_start, 30u);
  EXPECT_EQ(recs[0].src_prefix.ToString(), "10.1.0.0/16");
}

TEST(AggregatorTest, FanoutCountsShortFlows) {
  Aggregator agg({30.0, 16, 300});
  FlowRecord f;
  f.src_ip = ParseIp("10.1.0.1").value();
  f.dst_ip = ParseIp("10.2.0.1").value();
  f.router = 0;
  for (int i = 0; i < 10; ++i) {
    f.bytes = 40;  // short
    f.dst_ip = ParseIp("10.2.0.1").value() + i;
    f.time_sec = i;
    agg.Add(f);
  }
  f.bytes = 100000;  // long
  f.time_sec = 15;
  agg.Add(f);
  auto recs = agg.DrainAll();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].fanout, 10u);
  EXPECT_EQ(recs[0].flows, 11u);
  EXPECT_EQ(recs[0].distinct_dsts, 10u);
}

TEST(AggregatorTest, DrainCompletedLeavesOpenWindows) {
  Aggregator agg({30.0, 16, 300});
  FlowRecord f;
  f.src_ip = 0x0A010001;
  f.dst_ip = 0x0A020001;
  f.router = 0;
  f.bytes = 100;
  f.time_sec = 10;
  agg.Add(f);
  f.time_sec = 70;
  agg.Add(f);
  auto done = agg.DrainCompleted(60);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(agg.buffered_windows(), 1u);
}

TEST(AggregatorTest, TopPortIsMode) {
  Aggregator agg({30.0, 16, 300});
  FlowRecord f;
  f.src_ip = 0x0A010001;
  f.dst_ip = 0x0A020001;
  f.router = 0;
  f.bytes = 100;
  for (int i = 0; i < 3; ++i) {
    f.dst_port = 443;
    f.time_sec = i;
    agg.Add(f);
  }
  f.dst_port = 80;
  f.time_sec = 4;
  agg.Add(f);
  auto recs = agg.DrainAll();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].top_dst_port, 443);
}

// The Figure 1 property: aggregation + filtering reduces record volume by
// orders of magnitude.
TEST(AggregatorTest, AggregationReducesVolume) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 120;
  gopts.seed = 7;
  FlowGenerator gen(topo, gopts);
  auto raw = gen.GenerateVec(0, 43200, 44100);  // 15 min midday
  auto aggregated = AggregateAll(raw, {30.0, 16, 300});
  EXPECT_LT(aggregated.size(), raw.size());
  size_t filtered = 0;
  uint64_t seq = 0;
  for (const auto& rec : aggregated) {
    if (ToIndex2Tuple(rec, seq++).has_value()) ++filtered;
  }
  // Filtering removes the vast majority of aggregates.
  EXPECT_LT(filtered, aggregated.size() / 5);
}

// ---------------------------------------------------------------- Indices

TEST(IndicesTest, DefinitionsValidate) {
  EXPECT_TRUE(MakeIndex1().Validate().ok());
  EXPECT_TRUE(MakeIndex2().Validate().ok());
  EXPECT_TRUE(MakeIndex3().Validate().ok());
  EXPECT_EQ(MakeIndex1().schema.dims(), 3);
  EXPECT_EQ(MakeIndex1().time_attr, 1);
  EXPECT_EQ(MakeIndex3().carried.size(), 3u);
}

AggregateRecord SampleRecord() {
  AggregateRecord rec;
  rec.src_prefix = IpPrefix(ParseIp("10.1.0.0").value(), 16);
  rec.dst_prefix = IpPrefix(ParseIp("10.2.0.0").value(), 16);
  rec.window_start = 300;
  rec.octets = 100 * 1024;
  rec.fanout = 20;
  rec.distinct_dsts = 5;
  rec.flows = 25;
  rec.avg_flow_size = 4096;
  rec.top_dst_port = 3306;
  rec.router = 4;
  return rec;
}

TEST(IndicesTest, FiltersApplyThresholds) {
  AggregateRecord rec = SampleRecord();
  EXPECT_TRUE(ToIndex1Tuple(rec, 1).has_value());   // fanout 20 >= 16
  EXPECT_TRUE(ToIndex2Tuple(rec, 1).has_value());   // 100KB >= 80KB
  EXPECT_TRUE(ToIndex3Tuple(rec, 1).has_value());   // 4KB >= 1.5KB
  rec.fanout = 15;
  rec.octets = 70 * 1024;
  rec.avg_flow_size = 1000;
  EXPECT_FALSE(ToIndex1Tuple(rec, 1).has_value());
  EXPECT_FALSE(ToIndex2Tuple(rec, 1).has_value());
  EXPECT_FALSE(ToIndex3Tuple(rec, 1).has_value());
}

TEST(IndicesTest, TuplesMatchSchemas) {
  AggregateRecord rec = SampleRecord();
  auto t1 = ToIndex1Tuple(rec, 9).value();
  EXPECT_EQ(t1.point.size(), 3u);
  EXPECT_EQ(t1.point[0], rec.dst_prefix.First());
  EXPECT_EQ(t1.point[1], rec.window_start);
  EXPECT_EQ(t1.point[2], rec.fanout);
  EXPECT_EQ(t1.extra.size(), 2u);
  EXPECT_EQ(t1.origin, 4);
  EXPECT_EQ(t1.seq, 9u);
  EXPECT_TRUE(MakeIndex1().schema.Contains(t1.point));

  auto t3 = ToIndex3Tuple(rec, 9).value();
  EXPECT_EQ(t3.extra[1], 3306u);
  EXPECT_TRUE(MakeIndex3().schema.Contains(t3.point));
}

TEST(IndicesTest, ClampsToDomainCaps) {
  AggregateRecord rec = SampleRecord();
  rec.fanout = 999999;
  rec.octets = 50ull * 1024 * 1024 * 1024;
  auto t1 = ToIndex1Tuple(rec, 1).value();
  EXPECT_EQ(t1.point[2], PaperIndexOptions{}.index1_max_fanout);
  auto t2 = ToIndex2Tuple(rec, 1).value();
  EXPECT_EQ(t2.point[2], PaperIndexOptions{}.index2_max_octets);
}

// ---------------------------------------------------------------- Skew/drift

// Figure 2/3 preconditions: aggregated traffic is strongly skewed, and
// day-to-day distributions are far more similar than hour-to-hour ones.
TEST(TrafficStatsTest, IndexedDataIsSkewed) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 120;
  gopts.seed = 13;
  FlowGenerator gen(topo, gopts);
  auto raw = gen.GenerateVec(0, 40000, 41800);
  auto aggregated = AggregateAll(raw, {30.0, 16, 300});
  ASSERT_GT(aggregated.size(), 200u);

  IndexDef def = MakeIndex2();
  Histogram h(def.schema, 4);  // 64 cells, like the paper's 64-bin histogram
  PaperIndexOptions no_filter;
  no_filter.index2_min_octets = 0;
  uint64_t seq = 0;
  for (const auto& rec : aggregated) {
    auto t = ToIndex2Tuple(rec, seq++, no_filter);
    if (t) h.Add(t->point);
  }
  // Max bin should hold an order of magnitude more than the mean bin.
  double max_mass = 0;
  for (const auto& [p, m] : h.WeightedCellCenters()) {
    max_mass = std::max(max_mass, m);
  }
  double mean = h.total_mass() / static_cast<double>(h.num_cells());
  EXPECT_GT(max_mass, 8 * mean);
}

TEST(TrafficStatsTest, DayToDaySimilarHourToHourNot) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 60;
  gopts.seed = 17;
  FlowGenerator gen(topo, gopts);

  IndexDef def = MakeIndex2();
  PaperIndexOptions no_filter;
  no_filter.index2_min_octets = 0;
  // Histogram over (dst_prefix, time-of-day, octets).
  auto histogram_of = [&](int day, double t0, double t1) {
    Histogram h(def.schema, 8);
    auto raw = gen.GenerateVec(day, t0, t1);
    uint64_t seq = 0;
    for (const auto& rec : AggregateAll(raw, {30.0, 16, 300})) {
      auto t = ToIndex2Tuple(rec, seq++, no_filter);
      if (t) {
        t->point[1] %= 86400;  // align timestamps across days (time of day)
        h.Add(t->point);
      }
    }
    return h;
  };

  // Same hour on consecutive days vs different hours on the same day.
  Histogram d0 = histogram_of(0, 36000, 37800);
  Histogram d1 = histogram_of(1, 36000, 37800);
  Histogram other_hour = histogram_of(0, 64800, 66600);
  double day_mismatch = MismatchFraction(d0, d1).value();
  double hour_mismatch = MismatchFraction(d0, other_hour).value();
  EXPECT_LT(day_mismatch, 0.6 * hour_mismatch);
  EXPECT_LT(day_mismatch, 0.35);
  EXPECT_GT(hour_mismatch, 0.3);  // hot-set mixtures make hours diverge
}

// ---------------------------------------------------------------- Anomalies

TEST(AnomalyInjectorTest, AlphaFlowProducesLargeAggregates) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 19;
  FlowGenerator gen(topo, gopts);
  AnomalyInjector inj(&gen);
  AnomalyEvent ev;
  ev.type = AnomalyType::kAlphaFlow;
  ev.start_sec = 1000;
  ev.duration_sec = 120;
  ev.src_prefix = 3;
  ev.dst_prefix = 10;
  ev.magnitude = 4e9;  // 4 GB raw
  auto recs = inj.Generate(ev, 900, 1300);
  ASSERT_FALSE(recs.empty());
  auto aggregated = AggregateAll(recs, {30.0, 16, 300});
  uint64_t max_octets = 0;
  for (const auto& rec : aggregated) max_octets = std::max(max_octets, rec.octets);
  // 4 GB over 120 s at 1/100 sampling -> ~10 MB per 30 s window.
  EXPECT_GT(max_octets, 4'000'000u);
}

TEST(AnomalyInjectorTest, ScanAndDosDriveFanout) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  gopts.seed = 23;
  FlowGenerator gen(topo, gopts);
  AnomalyInjector inj(&gen);

  AnomalyEvent scan;
  scan.type = AnomalyType::kPortScan;
  scan.start_sec = 0;
  scan.duration_sec = 300;
  scan.src_prefix = 1;
  scan.dst_prefix = 2;
  scan.magnitude = 20000;  // probes/sec raw
  auto scan_aggr = AggregateAll(inj.Generate(scan, 0, 300), {30.0, 16, 300});
  uint32_t max_fanout = 0, max_dsts = 0;
  for (const auto& rec : scan_aggr) {
    max_fanout = std::max(max_fanout, rec.fanout);
    max_dsts = std::max(max_dsts, rec.distinct_dsts);
  }
  EXPECT_GT(max_fanout, 1500u);
  EXPECT_GT(max_dsts, 16u);  // distinguishes scan from DoS

  AnomalyEvent dos;
  dos.type = AnomalyType::kDos;
  dos.start_sec = 0;
  dos.duration_sec = 300;
  dos.src_prefix = 5;
  dos.dst_prefix = 6;
  dos.magnitude = 20000;
  auto dos_aggr = AggregateAll(inj.Generate(dos, 0, 300), {30.0, 16, 300});
  uint32_t dos_fanout = 0, dos_dsts = 0;
  for (const auto& rec : dos_aggr) {
    dos_fanout = std::max(dos_fanout, rec.fanout);
    dos_dsts = std::max(dos_dsts, rec.distinct_dsts);
  }
  EXPECT_GT(dos_fanout, 1500u);
  EXPECT_LE(dos_dsts, 1u);  // single victim
}

TEST(AnomalyInjectorTest, EmptyOutsideEventWindow) {
  Topology topo = Topology::Abilene();
  FlowGeneratorOptions gopts;
  FlowGenerator gen(topo, gopts);
  AnomalyInjector inj(&gen);
  AnomalyEvent ev;
  ev.type = AnomalyType::kDos;
  ev.start_sec = 1000;
  ev.duration_sec = 60;
  ev.magnitude = 10000;
  EXPECT_TRUE(inj.Generate(ev, 0, 900).empty());
  EXPECT_TRUE(inj.Generate(ev, 1100, 2000).empty());
}

// ------------------------------------------------- Binary trace I/O (MFT1)

std::vector<FlowRecord> SampleFlows() {
  std::vector<FlowRecord> flows;
  for (int i = 0; i < 5; ++i) {
    FlowRecord f;
    f.src_ip = 0x0a000001u + static_cast<uint32_t>(i);
    f.dst_ip = 0xc0a80001u + static_cast<uint32_t>(7 * i);
    f.src_port = static_cast<uint16_t>(1024 + i);
    f.dst_port = static_cast<uint16_t>(80 + i);
    f.bytes = 1'000'000'000ull * static_cast<uint64_t>(i + 1);
    f.packets = static_cast<uint32_t>(40 + i);
    f.time_sec = 39600.0 + 0.125 * i;
    f.router = i % 2 ? -1 : i;
    flows.push_back(f);
  }
  return flows;
}

/// Serializes SampleFlows(), hands the bytes to `corrupt` for mutation, and
/// returns the whole-stream read result.
Result<std::vector<FlowRecord>> ReadCorrupted(
    const std::function<void(std::string*)>& corrupt) {
  std::ostringstream out;
  EXPECT_TRUE(WriteFlowsBinary(out, SampleFlows()).ok());
  std::string bytes = out.str();
  corrupt(&bytes);
  std::istringstream in(bytes);
  return ReadFlowsBinary(in);
}

TEST(BinaryTraceIoTest, RoundTripPreservesEveryField) {
  auto flows = SampleFlows();
  std::ostringstream out;
  ASSERT_TRUE(WriteFlowsBinary(out, flows).ok());
  // Header 16 bytes + 36 bytes per record, exactly.
  EXPECT_EQ(out.str().size(), 16u + 36u * flows.size());
  std::istringstream in(out.str());
  auto got = ReadFlowsBinary(in);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().size(), flows.size());
  for (size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(got.value()[i].src_ip, flows[i].src_ip);
    EXPECT_EQ(got.value()[i].dst_ip, flows[i].dst_ip);
    EXPECT_EQ(got.value()[i].src_port, flows[i].src_port);
    EXPECT_EQ(got.value()[i].dst_port, flows[i].dst_port);
    EXPECT_EQ(got.value()[i].bytes, flows[i].bytes);
    EXPECT_EQ(got.value()[i].packets, flows[i].packets);
    EXPECT_EQ(got.value()[i].time_sec, flows[i].time_sec);  // exact: f64 bits
    EXPECT_EQ(got.value()[i].router, flows[i].router);
  }
}

TEST(BinaryTraceIoTest, RejectsShortHeader) {
  auto got = ReadCorrupted([](std::string* b) { b->resize(10); });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("shorter than the 16-byte header"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, RejectsBadMagic) {
  auto got = ReadCorrupted([](std::string* b) { (*b)[0] = 'X'; });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("bad magic"), std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, RejectsUnsupportedVersion) {
  auto got = ReadCorrupted([](std::string* b) { (*b)[4] = 9; });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("unsupported version 9"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, RejectsRecordSizeMismatch) {
  auto got = ReadCorrupted([](std::string* b) { (*b)[6] = 40; });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("40-byte records, reader expects 36"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, ReportsTruncatedRecord) {
  // Chop the file mid-way through record 3 (zero-based).
  auto got = ReadCorrupted([](std::string* b) { b->resize(16 + 36 * 3 + 20); });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find(
                "truncated at record 3 of 5 (short read of 20 bytes)"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, ReportsTrailingBytes) {
  auto got = ReadCorrupted([](std::string* b) { b->append("junk"); });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find(
                "trailing bytes after the declared 5 records"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, RejectsCorruptTimeAndRouter) {
  // time_sec sits at record offset 24; flip its sign bit (byte 7 of the f64).
  auto got = ReadCorrupted(
      [](std::string* b) { (*b)[16 + 36 * 2 + 24 + 7] |= '\x80'; });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find(
                "record 2 has a non-finite or negative time_sec"),
            std::string::npos)
      << got.status().ToString();

  // router sits at record offset 32; -5 as little-endian i32.
  got = ReadCorrupted([](std::string* b) {
    const size_t off = 16 + 36 * 4 + 32;
    (*b)[off] = static_cast<char>(0xFB);
    (*b)[off + 1] = (*b)[off + 2] = (*b)[off + 3] = static_cast<char>(0xFF);
  });
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("record 4 has router < -1"),
            std::string::npos)
      << got.status().ToString();
}

TEST(BinaryTraceIoTest, StreamingReaderCountsRecords) {
  std::ostringstream out;
  ASSERT_TRUE(WriteFlowsBinary(out, SampleFlows()).ok());
  std::istringstream in(out.str());
  BinaryFlowReader reader(&in);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.record_count(), 5u);
  FlowRecord f;
  size_t n = 0;
  while (true) {
    auto more = reader.Next(&f);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    ++n;
  }
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(reader.records_read(), 5u);
}

}  // namespace
}  // namespace mind
