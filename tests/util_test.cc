#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "util/bitcode.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/status.h"

namespace mind {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("index foo");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "index foo");
  EXPECT_EQ(s.ToString(), "NotFound: index foo");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Aborted("boom");
  Status t = s;
  EXPECT_TRUE(t.IsAborted());
  EXPECT_EQ(t.message(), "boom");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  MIND_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  MIND_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  Result<int> e = ParsePositive(0);
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsOutOfRange());
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoubleIt(21).value(), 42);
  EXPECT_TRUE(DoubleIt(-3).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

// ---------------------------------------------------------------- BitCode

TEST(BitCodeTest, EmptyCode) {
  BitCode c;
  EXPECT_EQ(c.length(), 0);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.ToString(), "(empty)");
}

TEST(BitCodeTest, PushPopRoundTrip) {
  BitCode c;
  c.PushBack(1);
  c.PushBack(0);
  c.PushBack(1);
  EXPECT_EQ(c.ToString(), "101");
  EXPECT_EQ(c.bit(0), 1);
  EXPECT_EQ(c.bit(1), 0);
  EXPECT_EQ(c.bit(2), 1);
  c.PopBack();
  EXPECT_EQ(c.ToString(), "10");
}

TEST(BitCodeTest, FromStringAndBits) {
  BitCode a = BitCode::FromString("0110");
  BitCode b = BitCode::FromBits(0b0110, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.bits(), 0b0110u);
}

TEST(BitCodeTest, FromBitsMasksHighBits) {
  BitCode c = BitCode::FromBits(0xFF, 4);
  EXPECT_EQ(c.ToString(), "1111");
  EXPECT_EQ(c.bits(), 0xFu);
}

TEST(BitCodeTest, CommonPrefixLen) {
  BitCode a = BitCode::FromString("0101");
  EXPECT_EQ(a.CommonPrefixLen(BitCode::FromString("0101")), 4);
  EXPECT_EQ(a.CommonPrefixLen(BitCode::FromString("0100")), 3);
  EXPECT_EQ(a.CommonPrefixLen(BitCode::FromString("01")), 2);
  EXPECT_EQ(a.CommonPrefixLen(BitCode::FromString("1101")), 0);
  EXPECT_EQ(a.CommonPrefixLen(BitCode()), 0);
}

TEST(BitCodeTest, IsPrefixOf) {
  BitCode root;
  BitCode a = BitCode::FromString("01");
  BitCode b = BitCode::FromString("0110");
  EXPECT_TRUE(root.IsPrefixOf(a));
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_FALSE(BitCode::FromString("00").IsPrefixOf(b));
}

TEST(BitCodeTest, SiblingParentChild) {
  BitCode a = BitCode::FromString("0110");
  EXPECT_EQ(a.Sibling().ToString(), "0111");
  EXPECT_EQ(a.Parent().ToString(), "011");
  EXPECT_EQ(a.Child(1).ToString(), "01101");
  EXPECT_EQ(a.WithBitFlipped(0).ToString(), "1110");
  EXPECT_EQ(a.Prefix(2).ToString(), "01");
}

TEST(BitCodeTest, OrderingIsTreePreorder) {
  // A prefix sorts before its extensions; otherwise first differing bit.
  std::vector<BitCode> codes = {
      BitCode::FromString("1"),    BitCode::FromString("01"),
      BitCode::FromString("0"),    BitCode::FromString("00"),
      BitCode::FromString("011"),  BitCode(),
  };
  std::sort(codes.begin(), codes.end());
  std::vector<std::string> got;
  for (const auto& c : codes) got.push_back(c.ToString());
  EXPECT_EQ(got, (std::vector<std::string>{"(empty)", "0", "00", "01", "011", "1"}));
}

TEST(BitCodeTest, MaxLength64) {
  BitCode c;
  for (int i = 0; i < 64; ++i) c.PushBack(i % 2);
  EXPECT_EQ(c.length(), 64);
  EXPECT_EQ(c.CommonPrefixLen(c), 64);
  EXPECT_TRUE(c.IsPrefixOf(c));
}

TEST(BitCodeTest, HashDistinguishesLengths) {
  // "0" vs "00" vs empty must hash differently with high probability; check
  // they are at least unequal and usable in a hash set.
  std::unordered_set<BitCode, BitCode::Hash> set;
  set.insert(BitCode());
  set.insert(BitCode::FromString("0"));
  set.insert(BitCode::FromString("00"));
  set.insert(BitCode::FromString("000"));
  EXPECT_EQ(set.size(), 4u);
}

// Property sweep: random codes round-trip through string and obey
// prefix/sibling algebra.
class BitCodePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitCodePropertyTest, RandomCodesRoundTripAndAlgebra) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    int len = 1 + static_cast<int>(rng.Uniform(64));
    BitCode c = BitCode::FromBits(rng.Next(), len);
    EXPECT_EQ(BitCode::FromString(c.ToString()), c);
    EXPECT_EQ(c.CommonPrefixLen(c), len);
    if (len >= 1) {
      EXPECT_EQ(c.Sibling().Sibling(), c);
      EXPECT_EQ(c.Parent().length(), len - 1);
      EXPECT_TRUE(c.Parent().IsPrefixOf(c));
      EXPECT_EQ(c.CommonPrefixLen(c.Sibling()), len - 1);
    }
    int flip = static_cast<int>(rng.Uniform(static_cast<uint64_t>(len)));
    EXPECT_EQ(c.CommonPrefixLen(c.WithBitFlipped(flip)), flip);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitCodePropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ParetoIsHeavyTailedAboveScale) {
  Rng rng(4);
  int above10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Pareto(1.0, 1.2);
    ASSERT_GE(v, 1.0);
    if (v > 10.0) ++above10;
  }
  // P(X > 10) = 10^-1.2 ~ 0.063.
  EXPECT_NEAR(static_cast<double>(above10) / n, 0.063, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ForkIndependentOfConsumption) {
  Rng a(9), b(9);
  (void)a.Next();  // consume from a only
  EXPECT_EQ(a.Fork(5).Next(), b.Fork(5).Next());
  EXPECT_NE(a.Fork(5).Next(), a.Fork(6).Next());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(50));
  double total = 0;
  for (size_t i = 0; i < zipf.n(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 1.1);
  Rng rng(13);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.pmf(0), 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, zipf.pmf(1), 0.02);
}

TEST(DiurnalCurveTest, PeakAndFloor) {
  DiurnalCurve curve(0.4, 14 * 3600.0);
  EXPECT_NEAR(curve.At(14 * 3600.0), 1.0, 1e-9);
  EXPECT_NEAR(curve.At(2 * 3600.0), 0.4, 1e-9);  // antipode of 14:00
  // Wraps at midnight.
  EXPECT_NEAR(curve.At(0.0), curve.At(86400.0), 1e-9);
  for (double t = 0; t < 86400; t += 3600) {
    double v = curve.At(t);
    EXPECT_GE(v, 0.4 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

// ---------------------------------------------------------------- IP

TEST(IpTest, ToStringRoundTrip) {
  EXPECT_EQ(IpToString(0xC0A82001), "192.168.32.1");
  auto r = ParseIp("192.168.32.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0xC0A82001u);
}

TEST(IpTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseIp("300.1.1.1").ok());
  EXPECT_FALSE(ParseIp("1.2.3").ok());
  EXPECT_FALSE(ParseIp("a.b.c.d").ok());
  EXPECT_FALSE(ParseIp("1.2.3.4x").ok());
}

TEST(IpPrefixTest, ContainsAndBounds) {
  auto p = IpPrefix::Parse("192.168.32.0/20");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "192.168.32.0/20");
  EXPECT_EQ(p->Size(), 4096u);
  EXPECT_TRUE(p->Contains(ParseIp("192.168.32.1").value()));
  EXPECT_TRUE(p->Contains(ParseIp("192.168.47.255").value()));
  EXPECT_FALSE(p->Contains(ParseIp("192.168.48.0").value()));
  EXPECT_EQ(p->First(), ParseIp("192.168.32.0").value());
  EXPECT_EQ(p->Last(), ParseIp("192.168.47.255").value());
}

TEST(IpPrefixTest, HostBitsZeroed) {
  IpPrefix p(ParseIp("10.1.2.3").value(), 8);
  EXPECT_EQ(p.ToString(), "10.0.0.0/8");
}

TEST(IpPrefixTest, NestingContains) {
  IpPrefix outer(ParseIp("10.0.0.0").value(), 8);
  IpPrefix inner(ParseIp("10.20.0.0").value(), 16);
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
}

TEST(IpPrefixTest, SlashZeroAndSlash32) {
  IpPrefix all(0, 0);
  EXPECT_TRUE(all.Contains(0xFFFFFFFFu));
  EXPECT_EQ(all.First(), 0u);
  EXPECT_EQ(all.Last(), 0xFFFFFFFFu);
  IpPrefix host(ParseIp("1.2.3.4").value(), 32);
  EXPECT_TRUE(host.Contains(ParseIp("1.2.3.4").value()));
  EXPECT_FALSE(host.Contains(ParseIp("1.2.3.5").value()));
  EXPECT_EQ(host.First(), host.Last());
}

TEST(IpPrefixTest, ParseErrors) {
  EXPECT_FALSE(IpPrefix::Parse("1.2.3.4").ok());
  EXPECT_FALSE(IpPrefix::Parse("1.2.3.4/33").ok());
  EXPECT_FALSE(IpPrefix::Parse("1.2.3.4/-1").ok());
}

}  // namespace
}  // namespace mind
