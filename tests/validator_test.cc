// Corruption-injection tests for the runtime invariant validators.
//
// Each test breaks one structural invariant through a test-only peek into
// private state, then asserts the matching validator reports that precise
// violation (matched by diagnostic substring). When MIND_VALIDATORS is off
// (the Release default) the same corrupted structures must validate OK —
// which is exactly what proves the validator bodies compile out.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mind/mind_net.h"
#include "overlay_harness.h"
#include "sim/event_queue.h"
#include "space/cut_tree.h"
#include "space/histogram.h"
#include "storage/bitmap_backend.h"
#include "storage/sorted_runs_backend.h"
#include "storage/tuple_store.h"
#include "storage/version_manager.h"
#include "util/validate.h"

namespace mind {

// ------------------------------------------------------------ test peeks
// Friends of the production classes; the only way tests reach private state.

class EventQueueTestPeek {
 public:
  static std::vector<uint32_t>& heap(EventQueue& q) { return q.heap_; }
  static auto& slots(EventQueue& q) { return q.slots_; }
  static size_t& live_count(EventQueue& q) { return q.live_count_; }
};

class CutTreeTestPeek {
 public:
  static auto& nodes(CutTree& t) { return t.nodes_; }
};

class TupleStoreTestPeek {
 public:
  static SortedRunsBackend& sorted(TupleStore& s) {
    EXPECT_EQ(s.backend_kind(), IndexBackendKind::kSortedRuns);
    return static_cast<SortedRunsBackend&>(*s.backend_);
  }
  static BitmapIndexBackend& bitmap(TupleStore& s) {
    EXPECT_EQ(s.backend_kind(), IndexBackendKind::kBitmap);
    return static_cast<BitmapIndexBackend&>(*s.backend_);
  }
  static auto& base(TupleStore& s) { return sorted(s).base_; }
  static auto& delta(TupleStore& s) { return sorted(s).delta_; }
  static bool& delta_sorted(TupleStore& s) { return sorted(s).delta_sorted_; }
  static auto& base_keys(TupleStore& s) { return sorted(s).base_keys_; }
  static auto& delta_keys(TupleStore& s) { return sorted(s).delta_keys_; }
  static uint64_t& approx_bytes(TupleStore& s) { return s.approx_bytes_; }
  static auto& rows(BitmapIndexBackend& b) { return b.rows_; }
  static auto& fine(BitmapIndexBackend& b) { return b.fine_; }
  static auto& summary(BitmapIndexBackend& b) { return b.summary_; }
  static auto& dir_ids(BucketDirectory& d) { return d.ids_; }
  static auto& dir_maps(BucketDirectory& d) { return d.maps_; }
  static auto& bitmap_words(RleBitmap& bm) { return bm.words_; }
  static uint64_t& bitmap_count(RleBitmap& bm) { return bm.count_; }
};

class VersionManagerTestPeek {
 public:
  static auto& entries(IndexVersions& v) { return v.entries_; }
};

class OverlayTestPeek {
 public:
  static BitCode& code(OverlayNode& n) { return n.code_; }
  static auto& peers(OverlayNode& n) { return n.peers_; }
};

namespace {

// Validator-build expectation: the status reports `substr`; Release
// expectation: the corruption goes unnoticed (the check compiled out).
void ExpectViolation(const Status& st, const std::string& substr) {
  if (ValidatorsEnabled()) {
    ASSERT_FALSE(st.ok()) << "validator missed the injected corruption";
    EXPECT_NE(st.ToString().find(substr), std::string::npos)
        << "diagnostic \"" << st.ToString() << "\" lacks \"" << substr << "\"";
  } else {
    EXPECT_TRUE(st.ok()) << "validators are disabled but still fired: "
                         << st.ToString();
  }
}

TEST(ValidatorConfigTest, MacroAndConstantAgree) {
#if MIND_VALIDATORS_ENABLED
  EXPECT_TRUE(ValidatorsEnabled());
#else
  EXPECT_FALSE(ValidatorsEnabled());
#endif
}

// ------------------------------------------------------------ event queue

TEST(EventQueueValidatorTest, CleanQueuePasses) {
  EventQueue q;
  for (int i = 0; i < 20; ++i) q.Schedule(100 * (20 - i), [] {});
  EXPECT_TRUE(q.ValidateInvariants().ok());
  q.Run(10);
  EXPECT_TRUE(q.ValidateInvariants().ok());
}

TEST(EventQueueValidatorTest, DetectsHeapOrderViolation) {
  EventQueue q;
  q.Schedule(100, [] {});
  q.Schedule(200, [] {});
  q.Schedule(300, [] {});
  auto& heap = EventQueueTestPeek::heap(q);
  std::swap(heap[0], heap[2]);  // the t=300 slot now parents t=100
  ExpectViolation(q.ValidateInvariants(), "heap property violated");
}

TEST(EventQueueValidatorTest, DetectsLeakedSlot) {
  EventQueue q;
  q.Schedule(100, [] {});
  q.Schedule(200, [] {});
  EventQueueTestPeek::heap(q).pop_back();  // slot now on neither structure
  EventQueueTestPeek::live_count(q) = 1;   // keep counters self-consistent
  ExpectViolation(q.ValidateInvariants(), "leaked");
}

TEST(EventQueueValidatorTest, DetectsCounterDrift) {
  EventQueue q;
  q.Schedule(100, [] {});
  EventQueueTestPeek::live_count(q) = 2;
  ExpectViolation(q.ValidateInvariants(), "live_count_");
}

// -------------------------------------------------------------- cut tree

Schema TwoDimSchema() { return Schema({{"x", 0, 9999}, {"y", 0, 9999}}); }

CutTree BalancedTestTree(int depth = 3) {
  Schema schema = TwoDimSchema();
  Histogram h(schema, 8);
  for (Value x = 0; x < 10000; x += 97) {
    for (Value y = 0; y < 10000; y += 397) h.Add({x, y});
  }
  auto tree = CutTree::Balanced(schema, h, depth);
  MIND_CHECK_OK(tree.status());
  return std::move(tree).value();
}

TEST(CutTreeValidatorTest, WellFormedTreesPass) {
  EXPECT_TRUE(CutTree::Even(TwoDimSchema()).ValidateInvariants().ok());
  EXPECT_TRUE(BalancedTestTree().ValidateInvariants().ok());
}

TEST(CutTreeValidatorTest, DetectsSharedSubtree) {
  CutTree tree = BalancedTestTree();
  auto& nodes = CutTreeTestPeek::nodes(tree);
  ASSERT_GE(nodes[0].child0, 0);
  // Point a deeper link back at the root: the root is then reached twice
  // (and its region code is ambiguous), which must trip the visited check.
  nodes[static_cast<size_t>(nodes[0].child0)].child1 = 0;
  ExpectViolation(tree.ValidateInvariants(), "reachable twice");
}

TEST(CutTreeValidatorTest, DetectsOrphanNode) {
  CutTree tree = BalancedTestTree();
  auto& nodes = CutTreeTestPeek::nodes(tree);
  ASSERT_GE(nodes[0].child1, 0);
  nodes[0].child1 = -1;  // the whole high subtree becomes unreachable
  ExpectViolation(tree.ValidateInvariants(), "orphaned");
}

TEST(CutTreeValidatorTest, DetectsCutOutsideRegion) {
  CutTree tree = BalancedTestTree();
  auto& nodes = CutTreeTestPeek::nodes(tree);
  nodes[0].cut = 20000;  // beyond the whole domain on every dimension
  ExpectViolation(tree.ValidateInvariants(), "outside its region");
}

// ----------------------------------------------------------- tuple store

Tuple TwoDimTuple(Value x, Value y, uint64_t seq) {
  Tuple t;
  t.point = {x, y};
  t.extra = {x + y};
  t.origin = 1;
  t.seq = seq;
  return t;
}

TEST(TupleStoreValidatorTest, CleanStorePasses) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  for (uint64_t i = 0; i < 50; ++i) {
    store.Insert(TwoDimTuple(static_cast<Value>(i * 199 % 10000),
                             static_cast<Value>(i * 53 % 10000), i));
  }
  store.Compact();  // populate the base run...
  for (uint64_t i = 50; i < 80; ++i) {
    store.Insert(TwoDimTuple(static_cast<Value>(i * 199 % 10000),
                             static_cast<Value>(i * 53 % 10000), i));
  }
  (void)store.Query(Rect({{0, 9999}, {0, 9999}}));  // ...and sort the delta
  ASSERT_GT(TupleStoreTestPeek::base(store).size(), 0u);
  ASSERT_GT(TupleStoreTestPeek::delta(store).size(), 0u);
  EXPECT_TRUE(store.ValidateInvariants().ok());
}

TEST(TupleStoreValidatorTest, DetectsKeyPointMismatch) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  store.Insert(TwoDimTuple(100, 200, 1));  // fresh inserts land in the delta
  TupleStoreTestPeek::delta(store)[0].key ^= uint64_t{1} << 63;
  ExpectViolation(store.ValidateInvariants(), "under the installed cut tree");
}

TEST(TupleStoreValidatorTest, DetectsBaseRunOutOfOrder) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  for (uint64_t i = 0; i < 8; ++i) {
    store.Insert(TwoDimTuple(static_cast<Value>(i * 1200 % 10000),
                             static_cast<Value>(i * 777 % 10000), i));
  }
  store.Compact();
  auto& base = TupleStoreTestPeek::base(store);
  ASSERT_GE(base.size(), 2u);
  // Find two adjacent rows with distinct keys; swapping them must trip the
  // unconditional base-run order check.
  for (size_t i = 1; i < base.size(); ++i) {
    if (base[i - 1].key != base[i].key) {
      std::swap(base[i - 1], base[i]);
      ExpectViolation(store.ValidateInvariants(), "base run claims sorted");
      return;
    }
  }
  FAIL() << "all 8 base keys collided; pick spreadier test points";
}

TEST(TupleStoreValidatorTest, DetectsDeltaFalselyClaimingSorted) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  store.Insert(TwoDimTuple(100, 200, 1));
  store.Insert(TwoDimTuple(9000, 9100, 2));
  auto& delta = TupleStoreTestPeek::delta(store);
  ASSERT_EQ(delta.size(), 2u);
  ASSERT_NE(delta[0].key, delta[1].key);
  if (delta[0].key < delta[1].key) std::swap(delta[0], delta[1]);
  TupleStoreTestPeek::delta_sorted(store) = true;  // the lie under test
  ExpectViolation(store.ValidateInvariants(), "delta run claims sorted");
}

TEST(TupleStoreValidatorTest, DetectsByteAccountingDrift) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  store.Insert(TwoDimTuple(100, 200, 1));
  TupleStoreTestPeek::approx_bytes(store) += 8;
  ExpectViolation(store.ValidateInvariants(), "approx_bytes_");
}

TEST(TupleStoreValidatorTest, DetectsKeyColumnDrift) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  store.Insert(TwoDimTuple(100, 200, 1));
  // Probes search the derived key column while emits read the rows; a column
  // out of sync with its run returns wrong rows silently.
  TupleStoreTestPeek::delta_keys(store)[0] ^= uint64_t{1} << 62;
  ExpectViolation(store.ValidateInvariants(), "key column entry");
}

TEST(TupleStoreValidatorTest, DetectsKeyColumnLengthDrift) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())), 24);
  store.Insert(TwoDimTuple(100, 200, 1));
  store.Insert(TwoDimTuple(300, 400, 2));
  TupleStoreTestPeek::delta_keys(store).pop_back();
  ExpectViolation(store.ValidateInvariants(), "key column holds");
}

// -------------------------------------------------------- bitmap backend

TupleStoreConfig BitmapConfig() {
  TupleStoreConfig cfg;
  cfg.code_len = 24;
  cfg.options.backend = IndexBackendKind::kBitmap;
  return cfg;
}

void FillStore(TupleStore& store, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    store.Insert(TwoDimTuple(static_cast<Value>(i * 199 % 10000),
                             static_cast<Value>(i * 53 % 10000), i));
  }
}

TEST(BitmapBackendValidatorTest, CleanStorePasses) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillStore(store, 80);
  ASSERT_EQ(store.backend_kind(), IndexBackendKind::kBitmap);
  ASSERT_GT(TupleStoreTestPeek::bitmap(store).fine_buckets(), 1u);
  EXPECT_TRUE(store.ValidateInvariants().ok());
}

TEST(BitmapBackendValidatorTest, DetectsKeyPointMismatch) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillStore(store, 4);
  auto& rows = TupleStoreTestPeek::rows(TupleStoreTestPeek::bitmap(store));
  rows[2].key ^= uint64_t{1} << 40;
  ExpectViolation(store.ValidateInvariants(), "under the installed cut tree");
}

// 70 rows at one point share one fine bucket; their ids 0..69 cross the
// 63-bit chunk boundary, so the bucket's bitmap provably encodes a
// ones-fill word (chunk 0 is all ones) ahead of the active chunk.
void FillOneBucket(TupleStore& store, uint64_t n = 70) {
  for (uint64_t i = 0; i < n; ++i) store.Insert(TwoDimTuple(100, 200, i));
}

TEST(BitmapBackendValidatorTest, DetectsCorruptedBitmapWord) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillOneBucket(store);
  auto& fine = TupleStoreTestPeek::fine(TupleStoreTestPeek::bitmap(store));
  ASSERT_EQ(fine.size(), 1u);
  auto& words = TupleStoreTestPeek::bitmap_words(fine.map_at(0));
  ASSERT_FALSE(words.empty());
  ASSERT_EQ(words[0] >> 63, 1u) << "expected a fill word for chunk 0";
  words[0] ^= uint64_t{1} << 62;  // ones-fill -> zero-fill: 63 bits vanish
  ExpectViolation(store.ValidateInvariants(),
                  "set bits but its cardinality counter");
}

TEST(BitmapBackendValidatorTest, DetectsZeroLengthFillWord) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillOneBucket(store);
  auto& fine = TupleStoreTestPeek::fine(TupleStoreTestPeek::bitmap(store));
  ASSERT_EQ(fine.size(), 1u);
  auto& words = TupleStoreTestPeek::bitmap_words(fine.map_at(0));
  ASSERT_FALSE(words.empty());
  ASSERT_EQ(words[0] >> 63, 1u) << "expected a fill word for chunk 0";
  words[0] &= ~((uint64_t{1} << 62) - 1);  // zero its run length
  ExpectViolation(store.ValidateInvariants(), "zero-length fill");
}

TEST(BitmapBackendValidatorTest, DetectsRowInForeignFineBucket) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillStore(store, 80);
  auto& fine = TupleStoreTestPeek::fine(TupleStoreTestPeek::bitmap(store));
  ASSERT_GT(fine.size(), 1u);
  // Relabel the last bucket's bitmap under a bucket id none of its rows hash
  // to. ids are unique and sorted, so back()+1 is unused and keeps the
  // directory ordered (misorder has its own validator and test below).
  auto& ids = TupleStoreTestPeek::dir_ids(fine);
  ids.back() += 1;
  ExpectViolation(store.ValidateInvariants(), "that buckets to");
}

TEST(BitmapBackendValidatorTest, DetectsMisorderedDirectory) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillStore(store, 80);
  auto& fine = TupleStoreTestPeek::fine(TupleStoreTestPeek::bitmap(store));
  ASSERT_GT(fine.size(), 1u);
  auto& ids = TupleStoreTestPeek::dir_ids(fine);
  std::swap(ids.front(), ids.back());
  ExpectViolation(store.ValidateInvariants(), "directory misordered");
}

TEST(BitmapBackendValidatorTest, DetectsSummaryCardinalityDrift) {
  TupleStore store(std::make_shared<CutTree>(CutTree::Even(TwoDimSchema())),
                   BitmapConfig());
  FillStore(store, 80);
  auto& summary =
      TupleStoreTestPeek::summary(TupleStoreTestPeek::bitmap(store));
  ASSERT_FALSE(summary.empty());
  TupleStoreTestPeek::bitmap_count(summary.map_at(0)) += 1;
  // The summary bitmap's decoded bits no longer match its counter, and the
  // counter no longer matches the fine children: either diagnostic is precise.
  ExpectViolation(store.ValidateInvariants(), "bitmap-index: summary bucket");
}

// ------------------------------------------------------- version manager

TEST(VersionManagerValidatorTest, DetectsCutTreeDesync) {
  IndexVersions versions(24);
  auto cuts = std::make_shared<CutTree>(CutTree::Even(TwoDimSchema()));
  ASSERT_TRUE(versions.AddVersion(1, cuts, 0).ok());
  ASSERT_NE(versions.Store(1), nullptr);  // materialize the lazy store
  EXPECT_TRUE(versions.ValidateInvariants().ok());
  // Swap the chain's recorded tree for a distinct (even identical) instance:
  // queries would now be coded under a different object than the stored rows.
  VersionManagerTestPeek::entries(versions)[0].cuts =
      std::make_shared<CutTree>(CutTree::Even(TwoDimSchema()));
  ExpectViolation(versions.ValidateInvariants(), "desynced from its store");
}

TEST(VersionManagerValidatorTest, DetectsNonMonotonicVersions) {
  IndexVersions versions(24);
  auto cuts = std::make_shared<CutTree>(CutTree::Even(TwoDimSchema()));
  ASSERT_TRUE(versions.AddVersion(1, cuts, 0).ok());
  ASSERT_TRUE(versions.AddVersion(2, cuts, 100).ok());
  auto& entries = VersionManagerTestPeek::entries(versions);
  std::swap(entries[0], entries[1]);
  ExpectViolation(versions.ValidateInvariants(), "not strictly increasing");
}

// ---------------------------------------------------------- overlay fleet

TEST(OverlayValidatorTest, QuiescentFleetPasses) {
  OverlayFleet fleet = BuildOverlay(12, OverlayOptions{});
  ASSERT_EQ(fleet.JoinedCount(), fleet.size());
  EXPECT_TRUE(fleet.Validate().ok());
  EXPECT_TRUE(fleet.sim->events().ValidateInvariants().ok());
}

TEST(OverlayValidatorTest, DetectsDuplicateCode) {
  OverlayFleet fleet = BuildOverlay(8, OverlayOptions{});
  ASSERT_EQ(fleet.JoinedCount(), fleet.size());
  OverlayTestPeek::code(fleet[2]) = fleet[1].code();
  ExpectViolation(fleet.Validate(), "duplicate code");
}

TEST(OverlayValidatorTest, DetectsCoverGap) {
  OverlayFleet fleet = BuildOverlay(8, OverlayOptions{});
  ASSERT_EQ(fleet.JoinedCount(), fleet.size());
  // Narrow one node's region without anyone claiming the vacated half.
  OverlayTestPeek::code(fleet[3]) = fleet[3].code().Child(0);
  ExpectViolation(fleet.Validate(), "uncovered");
}

TEST(OverlayValidatorTest, DetectsSiblingLinkAsymmetry) {
  OverlayFleet fleet = BuildOverlay(8, OverlayOptions{});
  ASSERT_EQ(fleet.JoinedCount(), fleet.size());
  // Find a node whose exact sibling is another fleet member, then delete the
  // reverse edge from that sibling's peer table.
  for (size_t i = 0; i < fleet.size(); ++i) {
    const BitCode sib_code = fleet[i].code().Sibling();
    for (size_t j = 0; j < fleet.size(); ++j) {
      if (i == j || fleet[j].code() != sib_code) continue;
      auto& sib_peers = OverlayTestPeek::peers(fleet[j]);
      if (sib_peers.erase(fleet[i].id()) == 0) continue;
      ExpectViolation(fleet.Validate(), "sibling link asymmetric");
      return;
    }
  }
  FAIL() << "no sibling pair found in an 8-node overlay";
}

// --------------------------------------------- whole-net digest stability

uint64_t RunSmallScenario(uint64_t seed) {
  MindNetOptions mopts;
  mopts.sim.seed = seed;
  MindNet net(9, mopts);
  net.EnablePeriodicValidation(FromSeconds(5));
  MIND_CHECK_OK(net.Build());

  IndexDef def;
  def.name = "probe_idx";
  def.schema = Schema({{"x", 0, 9999}, {"y", 0, 9999}});
  def.time_attr = -1;
  MIND_CHECK_OK(net.CreateIndexEverywhere(
      def, std::make_shared<CutTree>(CutTree::Even(def.schema)), 1, 0));

  Rng rng(seed + 13);
  for (uint64_t i = 0; i < 200; ++i) {
    Tuple t;
    t.point = {rng.Uniform(10000), rng.Uniform(10000)};
    t.origin = static_cast<NodeId>(i % net.size());
    t.seq = i;
    MIND_CHECK_OK(net.node(i % net.size()).Insert("probe_idx", t));
    if (i % 25 == 0) net.sim().RunFor(FromSeconds(1));
  }
  net.sim().RunFor(FromSeconds(30));
  MIND_CHECK_OK(net.ValidateInvariants(/*quiescent=*/true));
  return net.StateDigest();
}

TEST(StateDigestTest, IdenticalScenariosDigestIdentically) {
  EXPECT_EQ(RunSmallScenario(4242), RunSmallScenario(4242));
}

TEST(StateDigestTest, DifferentSeedsDigestDifferently) {
  EXPECT_NE(RunSmallScenario(4242), RunSmallScenario(4243));
}

}  // namespace
}  // namespace mind
