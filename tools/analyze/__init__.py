# The MIND semantic contract analyzer (docs/ANALYSIS.md).
#
# Modules:
#   suppress      shared suppression grammar (also used by tools/mind_lint.py)
#   cpp_lexer     C++ tokenizer
#   cpp_model     the semantic IR every frontend produces
#   cpp_parser    builtin frontend: declaration-level C++ parser (zero deps)
#   clang_frontend libclang frontend (preferred when python3-clang is present)
#   checks        the contract rules over the IR
#   analyze       CLI driver (tools/run_analyze.sh calls this)
