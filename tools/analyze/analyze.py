"""CLI driver for the semantic contract analyzer.

Usage (tools/run_analyze.sh wraps this):

  python3 -m tools.analyze.analyze [paths...] \
      [--frontend=auto|builtin|clang] [--compdb build/compile_commands.json] \
      [--disable RULE]... [--list-rules]

Paths default to the repo's contract-bearing source directories. Output is
one finding per line, `file:line: [rule] message`, sorted; the exit code is
the number of unsuppressed findings (clamped to 1).
"""

import argparse
import os
import sys

from . import checks
from .cpp_model import Model
from .cpp_parser import parse_file

DEFAULT_DIRS = [
    "src/sim",
    "src/overlay",
    "src/mind",
    "src/space",
    "src/storage",
    "src/frontend",
    "src/util",
]


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(here))


def collect_files(paths, root):
    out = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            out.append(ap)
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith((".h", ".cc", ".cpp", ".hpp")):
                    out.append(os.path.join(dirpath, fn))
    return sorted(set(out))


def build_model_builtin(files, root):
    model = Model()
    for path in files:
        rel = os.path.relpath(path, root)
        try:
            model.add_file(parse_file(path, rel))
        except Exception as e:  # a parse gap must never kill the run
            print("analyze: warning: builtin frontend failed on %s: %s"
                  % (rel, e), file=sys.stderr)
    return model


def build_model_clang(files, root, compdb):
    from . import clang_frontend
    model = Model()
    for fm in clang_frontend.parse_files(files, root, compdb):
        model.add_file(fm)
    return model


def main(argv=None):
    ap = argparse.ArgumentParser(prog="analyze", description=__doc__)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: contract dirs)")
    ap.add_argument("--frontend", choices=["auto", "builtin", "clang"],
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json for the clang frontend")
    ap.add_argument("--disable", action="append", default=[],
                    metavar="RULE", help="disable one rule (repeatable)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--max-findings", type=int, default=0,
                    help="truncate output after N findings (0 = all)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(checks.ALL_CHECKS):
            print(name)
        return 0

    for rule in args.disable:
        if rule not in checks.ALL_CHECKS:
            print("analyze: error: unknown rule '%s' (see --list-rules)"
                  % rule, file=sys.stderr)
            return 2

    root = repo_root()
    paths = args.paths or DEFAULT_DIRS
    files = collect_files(paths, root)
    if not files:
        print("analyze: error: no source files under: %s"
              % " ".join(paths), file=sys.stderr)
        return 2

    compdb = args.compdb
    if compdb is None:
        cand = os.path.join(root, "build", "compile_commands.json")
        compdb = cand if os.path.exists(cand) else None

    frontend = args.frontend
    model = None
    if frontend in ("auto", "clang"):
        try:
            model = build_model_clang(files, root, compdb)
            print("analyze: frontend: libclang (compdb: %s)"
                  % (compdb or "none"), file=sys.stderr)
        except ImportError:
            if frontend == "clang":
                print("analyze: error: --frontend=clang but the clang "
                      "Python bindings are not importable", file=sys.stderr)
                return 2
            print("analyze: WARNING: libclang bindings unavailable; "
                  "falling back to the builtin frontend (declaration-level "
                  "parse, alias-resolution types). Install python3-clang "
                  "for compiler-accurate analysis.", file=sys.stderr)
    if model is None:
        model = build_model_builtin(files, root)
        print("analyze: frontend: builtin (%d files, %d classes, "
              "%d function bodies)"
              % (len(model.files), len(model.classes),
                 len(model.functions)), file=sys.stderr)

    findings = checks.run_checks(model, disabled=set(args.disable))
    shown = findings if args.max_findings <= 0 \
        else findings[:args.max_findings]
    for f in shown:
        print("%s:%d: [%s] %s" % (f.file, f.line, f.rule, f.message))
    if len(shown) < len(findings):
        print("... %d more findings suppressed by --max-findings"
              % (len(findings) - len(shown)))
    print("analyze: %d finding(s) across %d file(s)"
          % (len(findings), len(model.files)), file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
