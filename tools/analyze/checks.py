"""The contract rules. Each check walks the merged Model and yields
Finding(file, line, rule, message) tuples.

Rules (docs/ANALYSIS.md is the narrative version):

  digest-coverage   every non-exempt data member of a class that defines
                    DigestInto must be referenced by the digest fold
                    (same-class callees included) or carry an explicit
                    `// mind-digest: skip(<reason>)`.
  backend-purity    classes deriving from IndexBackend must not reference
                    telemetry, Rng, EventQueue or other simulation-visible
                    types (docs/BACKENDS.md §digest-transparency).
  phase-safety      in a class that phase-guards mutations with
                    MIND_CHECK(!InParallelPhase()), every method that writes
                    a data member must carry the guard (directly or via a
                    same-class callee) or a reasoned allow.
  unordered-emit    a range-for over a type that resolves to an unordered
                    container may not emit events/messages from its body
                    (iteration order is unspecified => nondeterminism).
  suppression-reason  every suppression annotation must state a reason.
"""

import re
from collections import namedtuple

Finding = namedtuple("Finding", ["file", "line", "rule", "message"])

# ---------------------------------------------------------------------------
# Shared type-text helpers. Type texts are space-joined token spellings.

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_MUTATING_METHODS = {
    "clear", "resize", "push_back", "pop_back", "emplace", "emplace_back",
    "emplace_front", "push_front", "pop_front", "erase", "insert", "assign",
    "swap", "reserve", "reset", "merge", "extract", "try_emplace",
    "insert_or_assign",
}
_UNORDERED_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")

EMIT_NAMES = {
    "Send", "SendRaw", "SendDirect", "Route", "Broadcast",
    "Schedule", "ScheduleAt", "ScheduleAtKeyed", "ScheduleKeyed",
    "DispatchKeyed", "ScheduleOn",
}


def _type_words(type_text):
    return re.findall(r"[A-Za-z_][A-Za-z0-9_]*|[^\sA-Za-z0-9_]+", type_text)


def _top_level_syms(type_text):
    """The punctuation appearing at angle-depth 0 of a type text."""
    depth = 0
    out = []
    for w in _type_words(type_text):
        for ch_group in (w,):
            if ch_group == "<":
                depth += 1
            elif ch_group == ">":
                depth = max(0, depth - 1)
            elif ch_group == ">>":
                depth = max(0, depth - 2)
            elif depth == 0 and not ch_group[0].isalpha() \
                    and ch_group[0] != "_":
                out.append(ch_group)
    return out

def is_pointer_type(type_text):
    return any("*" in s for s in _top_level_syms(type_text))


def is_reference_type(type_text):
    return any(s in ("&", "&&") for s in _top_level_syms(type_text))


def is_function_type(type_text):
    return re.search(r"\bfunction\b", type_text) is not None


def outer_class_name(type_text):
    """`std::vector<Foo> ` -> `std::vector`; strips const/cv and refs."""
    words = []
    for w in _type_words(type_text):
        if w == "<":
            break
        if w in ("const", "volatile", "typename", "struct", "class"):
            continue
        if not (w[0].isalpha() or w[0] == "_") and w != "::":
            continue
        words.append(w)
    return "".join(words)


# ---------------------------------------------------------------------------
# Check 1: digest-coverage.

def _digest_closure_ids(model, cls, fn):
    """All identifier spellings reachable from fn's body through same-class
    callees (transitively): the set of names the digest fold 'touches'."""
    ids = set()
    seen_fns = set()
    stack = [fn]
    while stack:
        f = stack.pop()
        key = (f.file, f.line)
        if key in seen_fns:
            continue
        seen_fns.add(key)
        body = f.body or []
        for idx, t in enumerate(body):
            if t.kind != "id":
                continue
            ids.add(t.text)
            if idx + 1 < len(body) and body[idx + 1].text == "(":
                callee = model.find_method(cls, t.text)
                if callee is not None:
                    stack.append(callee)
    return ids


def _is_instrument_struct(model, cls, type_text):
    """True for nested 'instrument' structs: every non-static member is a
    pointer or a std::function (pure plumbing, nothing to digest)."""
    name = outer_class_name(model.resolve_type_text(type_text, cls))
    if not name:
        return False
    ci = model.find_class(name, near=cls.qual_name)
    if ci is None or not ci.members:
        return False
    for m in ci.members:
        if m.is_static:
            continue
        rt = model.resolve_type_text(m.resolved_type or m.type_text, ci)
        if not (is_pointer_type(rt) or is_function_type(rt)):
            return False
    return True


def check_digest_coverage(model):
    findings = []
    for cls in model.classes.values():
        fn = None
        for cand in model.methods_of(cls.qual_name):
            if cand.name == "DigestInto":
                fn = cand
                break
        if fn is None:
            continue
        touched = _digest_closure_ids(model, cls, fn)
        fm = _file_model_for(model, cls.file)
        for m in cls.members:
            if m.name in touched:
                continue
            if m.is_static or m.is_mutable:
                continue
            rt = model.resolve_type_text(m.resolved_type or m.type_text, cls)
            if is_pointer_type(rt) or is_reference_type(rt) or \
                    is_function_type(rt):
                continue  # identity/plumbing, not simulation state
            if _is_instrument_struct(model, cls, m.type_text):
                continue
            mfm = _file_model_for(model, m.file) or fm
            sup = mfm.suppressions if mfm else None
            if sup is not None and (
                    sup.digest_skip_reason(m.line) is not None or
                    sup.allowed(m.line, "digest-coverage")):
                continue
            findings.append(Finding(
                m.file, m.line, "digest-coverage",
                "member '%s' of %s is not folded into DigestInto and has "
                "no '// mind-digest: skip(<reason>)' annotation"
                % (m.name, cls.qual_name)))
    return findings


# ---------------------------------------------------------------------------
# Check 2: backend-purity.

# Simulation-visible / nondeterminism-adjacent identifiers a storage backend
# has no business naming (docs/BACKENDS.md: backends are pure data
# structures; telemetry counters are the one sanctioned, reasoned exception).
_BACKEND_FORBIDDEN = {
    "telemetry": "telemetry namespace",
    "MetricsRegistry": "telemetry type",
    "Counter": "telemetry type",
    "SimHistogram": "telemetry type",
    "Histogram": "telemetry type",
    "Gauge": "telemetry type",
    "Rng": "random-number generator",
    "EventQueue": "simulation type",
    "Simulator": "simulation type",
    "Network": "simulation type",
    "ParallelEngine": "simulation type",
    "SimTime": "simulation type",
    "Tracer": "simulation type",
    "EventFn": "simulation type",
}


def _scan_forbidden_tokens(toks, file, sup, reported, findings, ctx):
    for t in toks:
        if t.kind != "id" or t.text not in _BACKEND_FORBIDDEN:
            continue
        key = (file, t.line, t.text)
        if key in reported:
            continue
        reported.add(key)
        if sup is not None and sup.allowed(t.line, "backend-purity"):
            continue
        findings.append(Finding(
            file, t.line, "backend-purity",
            "%s references '%s' (%s); IndexBackend implementations must "
            "stay simulation-blind (docs/BACKENDS.md)"
            % (ctx, t.text, _BACKEND_FORBIDDEN[t.text])))


def _scan_forbidden_text(text, file, line, sup, reported, findings, ctx):
    for word in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", text):
        if word not in _BACKEND_FORBIDDEN:
            continue
        key = (file, line, word)
        if key in reported:
            continue
        reported.add(key)
        if sup is not None and sup.allowed(line, "backend-purity"):
            continue
        findings.append(Finding(
            file, line, "backend-purity",
            "%s references '%s' (%s); IndexBackend implementations must "
            "stay simulation-blind (docs/BACKENDS.md)"
            % (ctx, word, _BACKEND_FORBIDDEN[word])))


def check_backend_purity(model):
    findings = []
    reported = set()
    for cls in model.derived_of("IndexBackend"):
        cls_sup = _suppressions_for(model, cls.file)
        for m in cls.members:
            _scan_forbidden_text(
                m.type_text, m.file, m.line,
                _suppressions_for(model, m.file) or cls_sup,
                reported, findings,
                "member '%s' of %s" % (m.name, cls.qual_name))
        cls_fm = _file_model_for(model, cls.file)
        if cls_fm is not None:
            for md in cls.method_decls:
                # Scan the declaration line (and its continuation) with
                # comments stripped; in-class decls carry the parameter
                # types the model doesn't retain.
                for ln in (md.line, md.line + 1):
                    if 1 <= ln <= len(cls_fm.raw_lines):
                        text = cls_fm.raw_lines[ln - 1].split("//")[0]
                        # Report (and honor allows) at the declaration's
                        # first line, wherever the reference sits.
                        _scan_forbidden_text(
                            text, cls.file, md.line, cls_sup, reported,
                            findings, "declaration of %s::%s"
                            % (cls.name, md.name))
                    if ln <= len(cls_fm.raw_lines) and (
                            ");" in cls_fm.raw_lines[ln - 1] or
                            "{" in cls_fm.raw_lines[ln - 1]):
                        break
        for fn in model.methods_of(cls.qual_name):
            fn_sup = _suppressions_for(model, fn.file)
            _scan_forbidden_text(
                fn.param_text + " " + (fn.return_type or ""),
                fn.file, fn.line, fn_sup, reported, findings,
                "signature of %s::%s" % (cls.name, fn.name))
            _scan_forbidden_tokens(
                fn.body or [], fn.file, fn_sup, reported, findings,
                "%s::%s" % (cls.name, fn.name))
    findings_sorted = sorted(findings)
    return findings_sorted


# ---------------------------------------------------------------------------
# Check 3: phase-safety.

def _has_phase_guard(body):
    """True when the body contains MIND_CHECK(!InParallelPhase())."""
    toks = body or []
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "MIND_CHECK":
            window = toks[i + 1:i + 8]
            texts = [w.text for w in window]
            if "InParallelPhase" in texts and "!" in texts:
                return True
    return False


def _member_mutations(body, member_names):
    """Yields (member_name, line) for each syntactic write to a data member
    in `body`: assignment/compound-assignment, ++/--, or a call to a known
    mutating container method, including through [index] and .field chains
    rooted at the member."""
    toks = body or []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind != "id" or t.text not in member_names:
            i += 1
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev is not None and prev.kind == "punct" and \
                prev.text in (".", "::"):
            i += 1
            continue  # other.foo_ / Qualified::foo_ — not this object
        if prev is not None and prev.text == "->" and not (
                i >= 2 and toks[i - 2].kind == "id" and
                toks[i - 2].text == "this"):
            i += 1
            continue
        name = t.text
        line = t.line
        if prev is not None and prev.text in ("++", "--"):
            yield (name, line)
            i += 1
            continue
        # Walk the access chain: member [idx]* ( .field | ->field )* op
        j = i + 1
        mutated = False
        while j < n:
            nt = toks[j]
            if nt.text == "[":
                depth = 0
                while j < n:
                    if toks[j].text == "[":
                        depth += 1
                    elif toks[j].text == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                j += 1
                continue
            if nt.text in (".", "->"):
                if j + 1 < n and toks[j + 1].kind == "id":
                    field = toks[j + 1].text
                    if field in _MUTATING_METHODS and j + 2 < n and \
                            toks[j + 2].text == "(":
                        mutated = True
                        break
                    j += 2
                    continue
                break
            if nt.text in _ASSIGN_OPS or nt.text in ("++", "--"):
                mutated = True
                break
            break
        if mutated:
            yield (name, line)
        i += 1


def check_phase_safety(model):
    findings = []
    for cls in model.classes.values():
        methods = model.methods_of(cls.qual_name)
        if not methods:
            continue
        guarded = {fn.name for fn in methods if _has_phase_guard(fn.body)}
        if not guarded:
            continue  # class does not participate in the phase protocol
        member_names = {m.name for m in cls.members if not m.is_static}
        for fn in methods:
            if fn.name in guarded:
                continue
            if fn.name == cls.name or fn.name.startswith("~"):
                continue  # construction/destruction precede sharing
            calls_guarded = False
            body = fn.body or []
            for idx, t in enumerate(body):
                if t.kind == "id" and t.text in guarded and \
                        idx + 1 < len(body) and body[idx + 1].text == "(":
                    prev = body[idx - 1] if idx > 0 else None
                    if prev is None or prev.text not in (".", "->", "::") \
                            or (idx >= 2 and body[idx - 2].text == "this"):
                        calls_guarded = True
                        break
            if calls_guarded:
                continue
            sup = _suppressions_for(model, fn.file)
            for mname, line in _member_mutations(body, member_names):
                if sup is not None and sup.allowed(line, "phase-safety"):
                    continue
                findings.append(Finding(
                    fn.file, line, "phase-safety",
                    "%s::%s writes '%s' without "
                    "MIND_CHECK(!InParallelPhase()); world-state mutation "
                    "during a parallel phase breaks determinism"
                    % (cls.name, fn.name, mname)))
    return findings


# ---------------------------------------------------------------------------
# Check 4: unordered-emit (v2 — real type resolution).

def _collect_auto_locals(model, fn, cls):
    """name -> declared-or-inferred type text for `auto x = expr;` and
    simple `Type x = expr;` locals in fn's body."""
    locals_ = {}
    body = fn.body or []
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "id" and t.text == "auto":
            j = i + 1
            while j < n and body[j].text in ("&", "&&", "*", "const"):
                j += 1
            if j < n and body[j].kind == "id" and j + 1 < n and \
                    body[j + 1].text == "=":
                name = body[j].text
                k = j + 2
                expr = []
                depth = 0
                while k < n:
                    tt = body[k]
                    if tt.text in ("(", "[", "{"):
                        depth += 1
                    elif tt.text in (")", "]", "}"):
                        depth -= 1
                    elif tt.text == ";" and depth <= 0:
                        break
                    expr.append(tt)
                    k += 1
                rt = resolve_expr_type(model, expr, fn, cls, locals_)
                if rt:
                    locals_[name] = rt
                i = k
                continue
        i += 1
    return locals_


def resolve_expr_type(model, expr, fn, cls, locals_=None):
    """Best-effort static type of an expression token list: members (with
    inheritance), locals, one-level field chains, calls resolved to return
    types. Returns a type text or None."""
    locals_ = locals_ or {}
    toks = [t for t in expr if t.text not in ("const", "&", "&&")]
    if not toks:
        return None
    cur_type = None
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text == "*" and cur_type is None:
            i += 1
            continue
        if t.text in (".", "->", "::"):
            i += 1
            continue
        if t.text == "(":
            # parenthesized subexpression — recurse over its contents
            depth = 0
            j = i
            while j < n:
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if cur_type is None:
                cur_type = resolve_expr_type(
                    model, toks[i + 1:j], fn, cls, locals_)
            i = j + 1
            continue
        if t.kind != "id":
            return None
        is_call = i + 1 < n and toks[i + 1].text == "("
        if cur_type is None:
            if t.text == "this":
                cur_type = cls.qual_name if cls else None
                i += 1
                continue
            if is_call:
                callee = model.find_method(cls, t.text) if cls else None
                if callee is None:
                    callee = next(
                        (f for f in model.functions
                         if f.owner_class is None and f.name == t.text),
                        None)
                if callee is None or not callee.return_type:
                    return None
                cur_type = callee.return_type
            elif t.text in locals_:
                cur_type = locals_[t.text]
            else:
                m = model.find_member(cls, t.text) if cls else None
                if m is None:
                    return None
                cur_type = m.resolved_type or m.type_text
        else:
            owner = model.find_class(
                outer_class_name(model.resolve_type_text(cur_type, cls)),
                near=cls.qual_name if cls else None)
            if owner is None:
                return None
            if is_call:
                callee = model.find_method(owner, t.text)
                if callee is None or not callee.return_type:
                    return None
                cur_type = callee.return_type
            else:
                m = model.find_member(owner, t.text)
                if m is None:
                    al = model.class_alias(owner, t.text)
                    if al is None:
                        return None
                    cur_type = al
                else:
                    cur_type = m.resolved_type or m.type_text
        if is_call:
            depth = 0
            while i < n:
                if toks[i].text == "(":
                    depth += 1
                elif toks[i].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
        i += 1
        # trailing [index]: element access — approximate as mapped/value
        # type unknown; stop resolving chains through subscripts.
        if i < n and toks[i].text == "[":
            return None
    return cur_type


def _range_fors(body):
    """Yields (line, range_expr_tokens, body_tokens) for each range-based
    for in the token stream (nested loops included)."""
    toks = body or []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if not (t.kind == "id" and t.text == "for" and i + 1 < n and
                toks[i + 1].text == "("):
            i += 1
            continue
        # find matching ')'
        depth = 0
        j = i + 1
        colon = None
        while j < n:
            tt = toks[j]
            if tt.text == "(":
                depth += 1
            elif tt.text == ")":
                depth -= 1
                if depth == 0:
                    break
            elif tt.text == ":" and depth == 1 and colon is None:
                colon = j
            j += 1
        if colon is None:
            i = j + 1
            continue
        range_expr = toks[colon + 1:j]
        # loop body extent
        k = j + 1
        if k < n and toks[k].text == "{":
            depth = 0
            end = k
            while end < n:
                if toks[end].text == "{":
                    depth += 1
                elif toks[end].text == "}":
                    depth -= 1
                    if depth == 0:
                        break
                end += 1
            loop_body = toks[k + 1:end]
            nxt = end + 1
        else:
            end = k
            while end < n and toks[end].text != ";":
                end += 1
            loop_body = toks[k:end]
            nxt = end + 1
        yield (t.line, range_expr, loop_body)
        i = k  # descend into the body for nested loops
        del nxt
    return


def _body_emits(body):
    """The first (line, name) of an emit call in the token stream, else
    None."""
    toks = body or []
    for idx, t in enumerate(toks):
        if t.kind == "id" and t.text in EMIT_NAMES and \
                idx + 1 < len(toks) and toks[idx + 1].text == "(":
            return (t.line, t.text)
    return None


def check_unordered_emit(model):
    findings = []
    for fn in model.functions:
        cls = model.classes.get(fn.owner_class) if fn.owner_class else None
        if cls is None and fn.owner_class:
            cls = model.find_class(fn.owner_class)
        locals_ = _collect_auto_locals(model, fn, cls)
        sup = _suppressions_for(model, fn.file)
        for line, range_expr, loop_body in _range_fors(fn.body):
            emit = _body_emits(loop_body)
            if emit is None:
                continue
            rt = resolve_expr_type(model, range_expr, fn, cls, locals_)
            if rt is None:
                # Fall back to the spelled expression itself (a literal
                # `std::unordered_map<...>` temporary, say).
                rt = " ".join(t.text for t in range_expr)
            resolved = model.resolve_type_text(rt, cls)
            if not _UNORDERED_RE.search(resolved):
                continue
            if sup is not None and sup.allowed(line, "unordered-emit"):
                continue
            findings.append(Finding(
                fn.file, line, "unordered-emit",
                "%s iterates an unordered container (resolved type '%s') "
                "and calls %s() in the loop body; iteration order is "
                "unspecified, so emission order is nondeterministic"
                % (fn.qual_name, _shorten(resolved), emit[1])))
    return findings


def _shorten(text, limit=60):
    text = re.sub(r"\s+", " ", text).strip()
    return text if len(text) <= limit else text[:limit - 3] + "..."


# ---------------------------------------------------------------------------
# Check 5: suppression hygiene.

def check_suppression_reasons(model):
    findings = []
    for fm in model.files:
        sup = fm.suppressions
        if sup is None:
            continue
        for line, kind, detail in sup.missing_reasons:
            if kind == "allow":
                msg = ("'mind-lint: allow(%s)' has no reason; write "
                       "'// mind-lint: allow(%s): <why>'" % (detail, detail))
            else:
                msg = ("'mind-digest: skip()' has no reason; write "
                       "'// mind-digest: skip(<why>)'")
            findings.append(Finding(
                fm.relpath, line, "suppression-reason", msg))
    return findings


# ---------------------------------------------------------------------------

def _file_model_for(model, relpath):
    cache = getattr(model, "_by_relpath", None)
    if cache is None or len(cache) != len(model.files):
        cache = {fm.relpath: fm for fm in model.files}
        model._by_relpath = cache
    return cache.get(relpath)


def _suppressions_for(model, relpath):
    fm = _file_model_for(model, relpath)
    return fm.suppressions if fm else None


ALL_CHECKS = {
    "digest-coverage": check_digest_coverage,
    "backend-purity": check_backend_purity,
    "phase-safety": check_phase_safety,
    "unordered-emit": check_unordered_emit,
    "suppression-reason": check_suppression_reasons,
}


def run_checks(model, disabled=()):
    findings = []
    for name, fn in ALL_CHECKS.items():
        if name in disabled:
            continue
        findings.extend(fn(model))
    return sorted(set(findings))
