"""libclang frontend: compiler-accurate AST -> the shared semantic IR.

Preferred when the `clang` Python bindings are importable (Debian:
python3-clang + libclang). Parses each requested file against the flags in
the CMake-exported compile_commands.json, then lowers the cursors into the
same Model the builtin frontend produces — with `resolved_type` pre-filled
from clang's canonical types, so the checks skip alias chasing entirely.

Headers don't appear in the compilation database; each one is parsed with
the flags of a source file from the same directory (or any source file as a
fallback), which matches how this codebase includes its headers.

Import errors are left to the caller: analyze.py catches them and falls
back to the builtin frontend with a loud warning.
"""

import json
import os

from .cpp_lexer import Token
from .cpp_model import (ClassInfo, FileModel, FunctionDef, Member,
                        MethodDecl)
from .suppress import Suppressions


def _load_compdb(compdb_path):
    with open(compdb_path, encoding="utf-8") as f:
        entries = json.load(f)
    by_file = {}
    for e in entries:
        src = os.path.normpath(os.path.join(e["directory"], e["file"]))
        args = e.get("arguments")
        if args is None:
            import shlex
            args = shlex.split(e.get("command", ""))
        # Drop the compiler, the input file and output options.
        flags = []
        skip = False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", src, e["file"]):
                continue
            if a in ("-o", "-MF", "-MT", "-MQ"):
                skip = True
                continue
            if a.endswith((".cc", ".cpp", ".o")):
                continue
            flags.append(a)
        by_file[src] = flags
    return by_file


def _flags_for(path, by_file):
    if path in by_file:
        return by_file[path]
    d = os.path.dirname(path)
    for src, flags in by_file.items():
        if os.path.dirname(src) == d:
            return flags
    for flags in by_file.values():
        return flags
    return []


def _qual_name(cursor):
    parts = []
    c = cursor
    while c is not None and c.kind is not None:
        try:
            from clang.cindex import CursorKind
        except ImportError:  # pragma: no cover
            break
        if c.kind == CursorKind.TRANSLATION_UNIT:
            break
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _body_tokens(cursor):
    toks = []
    for t in cursor.get_tokens():
        kind = t.kind.name.lower()
        if kind == "identifier":
            k = "id"
        elif kind == "literal":
            k = "num" if t.spelling[:1].isdigit() else "str"
        elif kind == "keyword":
            k = "id"
        elif kind == "comment":
            continue
        else:
            k = "punct"
        toks.append(Token(k, t.spelling, t.location.line))
    return toks


def parse_files(paths, repo_root, compdb_path):
    """Parses `paths` with libclang; returns a list of FileModel. Raises
    ImportError when the clang bindings are unavailable."""
    from clang import cindex
    from clang.cindex import CursorKind

    index = cindex.Index.create()
    by_file = _load_compdb(compdb_path) if (
        compdb_path and os.path.exists(compdb_path)) else {}

    models = []
    for path in paths:
        relpath = os.path.relpath(path, repo_root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.splitlines()
        fm = FileModel(path=path, relpath=relpath, raw_lines=raw_lines,
                       suppressions=Suppressions(raw_lines))
        flags = _flags_for(os.path.abspath(path), by_file)
        tu = index.parse(path, args=flags,
                         options=cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)

        def visit(cursor, fm=fm, path=path, relpath=relpath):
            for c in cursor.get_children():
                loc_file = c.location.file.name if c.location.file else None
                in_this_file = loc_file and \
                    os.path.samefile(loc_file, path) if (
                        loc_file and os.path.exists(loc_file)) else False
                if c.kind in (CursorKind.NAMESPACE,):
                    visit(c)
                    continue
                if not in_this_file:
                    continue
                if c.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                              CursorKind.CLASS_TEMPLATE):
                    if not c.is_definition():
                        continue
                    qual = _qual_name(c)
                    ci = ClassInfo(name=c.spelling, qual_name=qual,
                                   file=relpath, line=c.location.line)
                    for ch in c.get_children():
                        if ch.kind == CursorKind.CXX_BASE_SPECIFIER:
                            ci.bases.append(
                                ch.type.spelling.replace("mind::", ""))
                        elif ch.kind == CursorKind.FIELD_DECL:
                            ci.members.append(Member(
                                name=ch.spelling,
                                type_text=ch.type.spelling,
                                line=ch.location.line, file=relpath,
                                is_mutable=ch.is_mutable_field(),
                                is_static=False,
                                resolved_type=ch.type.get_canonical()
                                .spelling))
                        elif ch.kind in (CursorKind.TYPE_ALIAS_DECL,
                                         CursorKind.TYPEDEF_DECL):
                            ci.aliases[ch.spelling] = \
                                ch.underlying_typedef_type.get_canonical()\
                                .spelling
                        elif ch.kind in (CursorKind.CXX_METHOD,
                                         CursorKind.CONSTRUCTOR,
                                         CursorKind.DESTRUCTOR):
                            ci.method_decls.append(MethodDecl(
                                name=ch.spelling, line=ch.location.line,
                                is_const=ch.is_const_method()))
                            _maybe_function(ch, fm, qual, relpath)
                    fm.classes[qual] = ci
                    visit(c)
                elif c.kind in (CursorKind.CXX_METHOD,
                                CursorKind.CONSTRUCTOR,
                                CursorKind.DESTRUCTOR,
                                CursorKind.FUNCTION_DECL,
                                CursorKind.FUNCTION_TEMPLATE):
                    owner = None
                    if c.semantic_parent is not None and \
                            c.semantic_parent.kind in (
                                CursorKind.CLASS_DECL,
                                CursorKind.STRUCT_DECL,
                                CursorKind.CLASS_TEMPLATE):
                        owner = _qual_name(c.semantic_parent)
                    _maybe_function(c, fm, owner, relpath)
                elif c.kind in (CursorKind.TYPE_ALIAS_DECL,
                                CursorKind.TYPEDEF_DECL):
                    fm.aliases[c.spelling] = \
                        c.underlying_typedef_type.get_canonical().spelling

        def _maybe_function(c, fm, owner, relpath):
            if not c.is_definition():
                return
            body = None
            for ch in c.get_children():
                if ch.kind == CursorKind.COMPOUND_STMT:
                    body = _body_tokens(ch)
            if body is None:
                return
            name = c.spelling
            qual = (owner + "::" + name) if owner else _qual_name(c)
            params = ", ".join(p.type.spelling
                               for p in c.get_arguments())
            is_const = False
            try:
                is_const = c.is_const_method()
            except AttributeError:
                pass
            fm.functions.append(FunctionDef(
                name=name, qual_name=qual, owner_class=owner,
                file=relpath, line=c.location.line,
                return_type=c.result_type.spelling
                if c.result_type else "",
                is_const=is_const, body=body, param_text=params))

        visit(tu.cursor)
        models.append(fm)
    return models
