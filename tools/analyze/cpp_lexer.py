"""C++ tokenizer for the builtin frontend.

Produces (kind, text, line) tokens with comments stripped and string/char
literals collapsed to single tokens. Preprocessor directives become one `pp`
token each (continuation lines included) so the parser can skip them without
miscounting braces inside conditional blocks.

Kinds: `id`, `num`, `str`, `chr`, `punct`, `pp`.
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# Longest-match-first multi-character operators. `<` and `>` stay single so
# template-argument scanning can track angle depth itself (`>>` closes two).
_PUNCTS = [
    "<<=", ">>=", "<=>", "->*", "...",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "##",
]

_ID_START = re.compile(r"[A-Za-z_]")
_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xXbB][0-9a-fA-F']+|[0-9][0-9a-fA-F.eEpPxX'+-]*)"
                     r"[uUlLfFzZ]*")


def tokenize(text):
    """Tokenizes C++ source text. Never raises on malformed input; unknown
    bytes become single-char punct tokens."""
    toks = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    line += text.count("\n", i)
                    i = n
                else:
                    line += text.count("\n", i, j + 2)
                    i = j + 2
                continue
        # Preprocessor directive (only at logical line start; we approximate
        # by accepting any '#' — C++ has no other use of a bare '#' outside
        # macros, which this codebase does not define with stray hashes).
        if c == "#":
            start = i
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                # Continuation line?
                k = j - 1
                while k >= start and text[k] in " \t\r":
                    k -= 1
                if k >= start and text[k] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            toks.append(Token("pp", text[start:i], line))
            continue
        # Raw strings: R"delim( ... )delim".
        if c in "RuUL" and i + 1 < n:
            m = re.match(r'(?:u8|[uUL])?R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                delim = ")" + m.group(1) + '"'
                j = text.find(delim, i + m.end())
                j = n if j < 0 else j + len(delim)
                toks.append(Token("str", text[i:j], line))
                line += text.count("\n", i, j)
                i = j
                continue
        if c == '"':
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                j += 1
            toks.append(Token("str", text[i:j + 1], line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                j += 1
            toks.append(Token("chr", text[i:j + 1], line))
            i = j + 1
            continue
        if _ID_START.match(c):
            m = _ID_RE.match(text, i)
            toks.append(Token("id", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            if m:
                toks.append(Token("num", m.group(0), line))
                i = m.end()
                continue
        matched = False
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Token("punct", p, line))
                i += len(p)
                matched = True
                break
        if not matched:
            toks.append(Token("punct", c, line))
            i += 1
    return toks


def match_brace(toks, i):
    """Given toks[i] == '{', returns the index of the matching '}'
    (or len(toks) - 1 when unbalanced)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def match_paren(toks, i):
    """Given toks[i] == '(', returns the index of the matching ')'."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def skip_angles(toks, i):
    """Given toks[i] == '<', returns the index just past the matching '>'.
    Treats '>>' as two closers; gives up at ';' or '{' (not a template)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t.text in (";", "{"):
                return i
        i += 1
    return n
