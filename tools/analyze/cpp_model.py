"""The semantic IR both frontends produce and every check consumes.

The model is deliberately token-oriented: a frontend parses declarations
precisely (classes, bases, members, aliases, function bodies) and hands the
checks token streams for the bodies. Type *resolution* (typedefs, `auto`,
member lookup) lives in resolve.py-style helpers on this model so the
builtin and libclang frontends share one definition of "what type is this
expression" — libclang simply pre-fills `resolved_type` where it knows
better.
"""

from dataclasses import dataclass, field


@dataclass
class Member:
    name: str
    type_text: str          # declared type, tokens joined with spaces
    line: int
    file: str
    is_mutable: bool = False
    is_static: bool = False
    resolved_type: str = None  # canonical type when a frontend knows it


@dataclass
class MethodDecl:
    name: str
    line: int
    is_const: bool = False


@dataclass
class ClassInfo:
    name: str               # unqualified
    qual_name: str          # Namespace::Outer::Name (no leading ::)
    file: str
    line: int
    bases: list = field(default_factory=list)       # base qual/spelled names
    members: list = field(default_factory=list)     # [Member]
    aliases: dict = field(default_factory=dict)     # name -> target type text
    method_decls: list = field(default_factory=list)


@dataclass
class FunctionDef:
    name: str               # unqualified (last component)
    qual_name: str          # as spelled, namespaces resolved
    owner_class: str        # qual name of the owning class, or None
    file: str
    line: int
    return_type: str
    is_const: bool
    body: list              # [Token] between (and excluding) the outer braces
    param_text: str = ""


@dataclass
class FileModel:
    path: str
    relpath: str
    raw_lines: list
    suppressions: object = None        # suppress.Suppressions
    classes: dict = field(default_factory=dict)     # qual -> ClassInfo
    functions: list = field(default_factory=list)   # [FunctionDef]
    aliases: dict = field(default_factory=dict)     # file/ns-level aliases


class Model:
    """Whole-corpus view: every parsed file merged."""

    def __init__(self):
        self.files = []                 # [FileModel]
        self.classes = {}               # qual name -> ClassInfo
        self.by_name = {}               # unqualified name -> [ClassInfo]
        self.functions = []             # [FunctionDef]
        self.functions_by_owner = {}    # owner qual -> [FunctionDef]
        self.aliases = {}               # merged namespace-level aliases

    def add_file(self, fm):
        self.files.append(fm)
        for qual, ci in fm.classes.items():
            self.classes.setdefault(qual, ci)
            self.by_name.setdefault(ci.name, []).append(ci)
        for fn in fm.functions:
            self.functions.append(fn)
            if fn.owner_class:
                self.functions_by_owner.setdefault(
                    fn.owner_class, []).append(fn)
        for name, target in fm.aliases.items():
            self.aliases.setdefault(name, target)

    # ---- lookup helpers -------------------------------------------------

    def find_class(self, name, near=None):
        """Resolves a possibly-unqualified class name. `near` is the qual
        name of the scope doing the lookup (tried as a prefix first)."""
        if name in self.classes:
            return self.classes[name]
        if near:
            parts = near.split("::")
            for cut in range(len(parts), 0, -1):
                cand = "::".join(parts[:cut]) + "::" + name
                if cand in self.classes:
                    return self.classes[cand]
        tail = name.split("::")[-1]
        hits = self.by_name.get(tail, [])
        if len(hits) == 1:
            return hits[0]
        for ci in hits:
            if ci.qual_name.endswith("::" + name) or ci.qual_name == name:
                return ci
        return None

    def find_member(self, class_info, member_name):
        """Member lookup walking the inheritance chain."""
        seen = set()
        stack = [class_info]
        while stack:
            ci = stack.pop()
            if ci.qual_name in seen:
                continue
            seen.add(ci.qual_name)
            for m in ci.members:
                if m.name == member_name:
                    return m
            for b in ci.bases:
                bc = self.find_class(b, near=ci.qual_name)
                if bc:
                    stack.append(bc)
        return None

    def methods_of(self, class_qual):
        return self.functions_by_owner.get(class_qual, [])

    def find_method(self, class_info, method_name):
        """A method definition (with body) of the class or a base."""
        seen = set()
        stack = [class_info]
        while stack:
            ci = stack.pop()
            if ci.qual_name in seen:
                continue
            seen.add(ci.qual_name)
            for fn in self.methods_of(ci.qual_name):
                if fn.name == method_name:
                    return fn
            for b in ci.bases:
                bc = self.find_class(b, near=ci.qual_name)
                if bc:
                    stack.append(bc)
        return None

    def class_alias(self, class_info, name):
        """Class-level alias lookup, walking bases."""
        seen = set()
        stack = [class_info]
        while stack:
            ci = stack.pop()
            if ci.qual_name in seen:
                continue
            seen.add(ci.qual_name)
            if name in ci.aliases:
                return ci.aliases[name]
            for b in ci.bases:
                bc = self.find_class(b, near=ci.qual_name)
                if bc:
                    stack.append(bc)
        return None

    def derived_of(self, base_name):
        """Every class whose (transitive) base chain contains a class whose
        name or qual name ends with `base_name`."""
        out = []
        for ci in self.classes.values():
            if self._derives_from(ci, base_name, set()):
                out.append(ci)
        return out

    def _derives_from(self, ci, base_name, seen):
        if ci.qual_name in seen:
            return False
        seen.add(ci.qual_name)
        for b in ci.bases:
            tail = b.split("<")[0].strip()
            if tail == base_name or tail.endswith("::" + base_name):
                return True
            bc = self.find_class(tail, near=ci.qual_name)
            if bc and self._derives_from(bc, base_name, seen):
                return True
        return False

    # ---- type resolution ------------------------------------------------

    def resolve_type_text(self, type_text, class_info=None, depth=0):
        """Expands known aliases inside a type string until fixpoint.
        A frontend that already canonicalized (libclang) short-circuits by
        storing resolved_type on members; this path serves the builtin
        frontend and expression resolution."""
        if not type_text or depth > 6:
            return type_text or ""
        import re as _re
        out = []
        changed = False
        for word in _re.split(r"(\W+)", type_text):
            if not word or not word[0].isalpha() and word[0] != "_":
                out.append(word)
                continue
            target = None
            if class_info is not None:
                target = self.class_alias(class_info, word)
            if target is None:
                target = self.aliases.get(word)
            if target and word not in ("std",):
                out.append(target)
                changed = True
            else:
                out.append(word)
        text = "".join(out)
        if changed:
            return self.resolve_type_text(text, class_info, depth + 1)
        return text
