"""Builtin frontend: a declaration-level C++ parser with zero dependencies.

This is not a general C++ parser. It understands the subset the repo's
style guide produces — namespaces, classes/structs with bases and nested
types, data members (with default/brace initializers), `using`/`typedef`
aliases, in-class and out-of-line (possibly templated) function definitions
with constructor initializer lists — and records function bodies as token
streams for the checks to analyze. Anything it cannot classify it skips
conservatively, so a parse gap degrades into a missed declaration, never a
crash or a phantom finding.

The libclang frontend (clang_frontend.py) produces the same model with
compiler-accurate types; CI prefers it when python3-clang is installed.
"""

from .cpp_lexer import tokenize, match_brace, match_paren, skip_angles
from .cpp_model import (ClassInfo, FileModel, FunctionDef, Member, MethodDecl)
from .suppress import Suppressions

_SPECIFIERS = {
    "static", "mutable", "constexpr", "consteval", "constinit", "inline",
    "virtual", "explicit", "extern", "thread_local", "volatile", "register",
}
_NOT_A_CALL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "throw", "case", "default", "do", "else", "noexcept",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "decltype", "assert", "alignas",
}


class _Scope:
    def __init__(self, kind, name, close_at, class_info=None):
        self.kind = kind          # 'ns' | 'class' | 'opaque'
        self.name = name
        self.close_at = close_at  # token index of the matching '}'
        self.class_info = class_info


class Parser:
    def __init__(self, path, relpath, text):
        self.path = path
        self.relpath = relpath
        self.toks = tokenize(text)
        raw_lines = text.splitlines()
        self.fm = FileModel(path=path, relpath=relpath, raw_lines=raw_lines,
                            suppressions=Suppressions(raw_lines))
        self.scopes = []

    # ---- scope helpers --------------------------------------------------

    def _ns_prefix(self):
        parts = [s.name for s in self.scopes if s.kind == "ns" and s.name]
        return "::".join(parts)

    def _qual(self, name):
        parts = [s.name for s in self.scopes
                 if s.kind in ("ns", "class") and s.name]
        parts.append(name)
        return "::".join(parts)

    def _current_class(self):
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.class_info
            if s.kind == "opaque":
                return None
        return None

    # ---- main loop ------------------------------------------------------

    def parse(self):
        toks = self.toks
        i = 0
        n = len(toks)
        pending_template = False
        while i < n:
            t = toks[i]
            if self.scopes and i >= self.scopes[-1].close_at:
                # Close every scope ending here (nested scopes may share the
                # index only if unbalanced; handle one at a time).
                self.scopes.pop()
                i += 1
                if i < n and toks[i].kind == "punct" and toks[i].text == ";":
                    i += 1
                continue
            if t.kind == "pp":
                i += 1
                continue
            if t.kind == "punct":
                if t.text == ";":
                    i += 1
                    continue
                if t.text == "{":  # stray block at declaration level
                    end = match_brace(toks, i)
                    self.scopes.append(_Scope("opaque", "", end))
                    i += 1
                    continue
                if t.text == "}":
                    # Unmatched close (shouldn't happen): skip.
                    i += 1
                    continue
                i += 1
                continue
            word = t.text
            if word == "template" and i + 1 < n and toks[i + 1].text == "<":
                i = skip_angles(toks, i + 1)
                pending_template = True
                continue
            if word == "namespace":
                i = self._parse_namespace(i)
                continue
            if word in ("class", "struct", "union"):
                ni = self._parse_class(i)
                if ni is not None:
                    i = ni
                    pending_template = False
                    continue
                # fall through: elaborated type in a declaration
            if word == "enum":
                i = self._skip_enum(i)
                continue
            if word in ("public", "private", "protected") and \
                    i + 1 < n and toks[i + 1].text == ":":
                i += 2
                continue
            if word == "using":
                i = self._parse_using(i)
                continue
            if word == "typedef":
                i = self._parse_typedef(i)
                continue
            if word in ("friend", "static_assert"):
                i = self._skip_statement(i)
                continue
            # A declaration: member, variable, function decl or definition.
            i = self._parse_declaration(i)
            pending_template = False
        return self.fm

    # ---- constructs -----------------------------------------------------

    def _parse_namespace(self, i):
        toks = self.toks
        j = i + 1
        name = ""
        while j < len(toks) and toks[j].kind == "id":
            name = name + ("::" if name else "") + toks[j].text
            j += 1
            if j < len(toks) and toks[j].text == "::":
                j += 1
                continue
            break
        if j < len(toks) and toks[j].text == "{":
            end = match_brace(toks, j)
            # Inline nested names (a::b) open one scope with the full name.
            self.scopes.append(_Scope("ns", name, end))
            return j + 1
        return self._skip_statement(i)  # namespace alias or using

    def _parse_class(self, i):
        """Returns the index after the class header's '{' (scope pushed),
        after a forward declaration's ';', or None when this isn't actually
        a class definition/declaration (elaborated type specifier)."""
        toks = self.toks
        j = i + 1
        # Skip attributes and macros conventionally placed before the name.
        while j < len(toks) and toks[j].kind == "pp":
            j += 1
        if j >= len(toks):
            return self._skip_statement(i)
        if toks[j].kind != "id":
            # Anonymous struct/union: treat the body as opaque.
            if toks[j].text == "{":
                end = match_brace(toks, j)
                self.scopes.append(_Scope("opaque", "", end))
                return j + 1
            return self._skip_statement(i)
        name = toks[j].text
        j += 1
        if j < len(toks) and toks[j].text == "<":  # explicit specialization
            j = skip_angles(toks, j)
        if j < len(toks) and toks[j].kind == "id" and toks[j].text == "final":
            j += 1
        if j >= len(toks):
            return len(toks)
        if toks[j].text == ";":
            return j + 1  # forward declaration
        bases = []
        if toks[j].text == ":":
            j += 1
            cur = []
            depth = 0
            while j < len(toks):
                tt = toks[j]
                if tt.text == "<":
                    depth += 1
                elif tt.text in (">", ">>"):
                    depth -= 2 if tt.text == ">>" else 1
                elif depth <= 0 and tt.text == "{":
                    break
                elif depth <= 0 and tt.text == ",":
                    if cur:
                        bases.append("".join(cur))
                    cur = []
                    j += 1
                    continue
                if tt.kind == "id" and tt.text in ("public", "protected",
                                                   "private", "virtual"):
                    j += 1
                    continue
                if depth <= 0 and tt.kind in ("id",) or tt.text == "::":
                    cur.append(tt.text)
                j += 1
            if cur:
                bases.append("".join(cur))
        if j >= len(toks) or toks[j].text != "{":
            # `struct Foo x;` style declaration — not a definition.
            return None
        end = match_brace(toks, j)
        ci = ClassInfo(name=name, qual_name=self._qual(name),
                       file=self.relpath, line=toks[i].line, bases=bases)
        self.fm.classes[ci.qual_name] = ci
        self.scopes.append(_Scope("class", name, end, class_info=ci))
        return j + 1

    def _skip_enum(self, i):
        toks = self.toks
        j = i + 1
        while j < len(toks) and toks[j].text not in ("{", ";"):
            j += 1
        if j < len(toks) and toks[j].text == "{":
            j = match_brace(toks, j) + 1
        while j < len(toks) and toks[j].text != ";":
            j += 1
        return j + 1

    def _parse_using(self, i):
        toks = self.toks
        if i + 1 < len(toks) and toks[i + 1].text == "namespace":
            return self._skip_statement(i)
        if i + 2 < len(toks) and toks[i + 1].kind == "id" and \
                toks[i + 2].text == "=":
            name = toks[i + 1].text
            j = i + 3
            target = []
            while j < len(toks) and toks[j].text != ";":
                target.append(toks[j].text)
                j += 1
            tgt = " ".join(target)
            cls = self._current_class()
            if cls is not None:
                cls.aliases[name] = tgt
            else:
                self.fm.aliases[name] = tgt
            return j + 1
        return self._skip_statement(i)  # using Base::foo;

    def _parse_typedef(self, i):
        toks = self.toks
        j = i + 1
        parts = []
        while j < len(toks) and toks[j].text != ";":
            parts.append(toks[j])
            j += 1
        if parts and parts[-1].kind == "id":
            name = parts[-1].text
            tgt = " ".join(p.text for p in parts[:-1])
            cls = self._current_class()
            if cls is not None:
                cls.aliases[name] = tgt
            else:
                self.fm.aliases[name] = tgt
        return j + 1

    def _skip_statement(self, i):
        toks = self.toks
        depth = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "punct":
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    depth -= 1
                elif t.text == ";" and depth <= 0:
                    return i + 1
            i += 1
        return i

    # ---- the workhorse --------------------------------------------------

    def _parse_declaration(self, i):
        """Parses one declaration starting at token i in a declaration
        context. Returns the index just past it."""
        toks = self.toks
        n = len(toks)
        j = i
        paren = 0
        angle = 0
        head = []           # tokens up to the stopper
        stop = None
        first_paren = None  # index (into head) of the first top-level '('
        while j < n:
            t = toks[j]
            if t.kind == "pp":
                j += 1
                continue
            if t.kind == "punct":
                if t.text == "(":
                    if paren == 0 and angle <= 0 and first_paren is None:
                        first_paren = len(head)
                    paren += 1
                elif t.text == ")":
                    paren -= 1
                elif t.text == "[":
                    paren += 1
                elif t.text == "]":
                    paren -= 1
                elif t.text == "<":
                    if paren == 0:
                        angle += 1
                elif t.text == ">":
                    if paren == 0 and angle > 0:
                        angle -= 1
                elif t.text == ">>":
                    if paren == 0 and angle > 0:
                        angle = max(0, angle - 2)
                elif paren == 0 and angle <= 0 and t.text in (";", "{", "="):
                    stop = t.text
                    break
            head.append(t)
            j += 1
        if stop is None:
            return n
        if stop == ";":
            self._record_head(head, is_def=False, had_init=False)
            return j + 1
        if stop == "=":
            # Function decl with `= 0 / default / delete`, or a member with a
            # default initializer.
            self._record_head(head, is_def=False, had_init=True)
            return self._skip_statement(j)
        # stop == '{'
        if first_paren is not None and self._looks_like_function(head,
                                                                first_paren):
            return self._record_function(head, first_paren, j)
        # Brace-initialized member: `T name{...};`
        self._record_head(head, is_def=False, had_init=True)
        end = match_brace(toks, j)
        k = end + 1
        if k < n and toks[k].text == ";":
            k += 1
        return k

    def _looks_like_function(self, head, first_paren):
        """True when head = `ret name ( params ) [trailer]` i.e. the token
        before '(' is a plausible function name."""
        k = first_paren - 1
        if k < 0:
            return False
        t = head[k]
        if t.kind != "id" and t.text != "~" and not (
                t.kind == "punct" and head[k - 1].text == "operator"
                if k >= 1 else False):
            # operator() / operator[] have punct directly before '('
            pass
        # Find whether an id / operator form directly precedes '('.
        if t.kind == "id":
            return True
        # operator+, operator==, operator[] ...
        k2 = k
        while k2 >= 0 and head[k2].kind == "punct":
            k2 -= 1
        return k2 >= 0 and head[k2].kind == "id" and \
            head[k2].text == "operator"

    def _record_function(self, head, first_paren, brace_idx):
        """Records a function definition whose body opens at brace_idx.
        Handles constructor initializer lists: brace_idx may actually point
        at an init-list brace; re-locates the true body brace."""
        toks = self.toks
        # Re-scan from the '(' to find the parameter list end, then walk the
        # trailer (const/noexcept/override/-> / ctor-inits) to the true body.
        # head was collected with pp tokens dropped, so map back via token
        # identity: find the absolute index of the first '(' at/after the
        # head's start line. Simpler: scan absolute tokens from the start.
        # We know brace_idx is the first top-level '{' after the decl start;
        # for a ctor-init like `: a_(x), b_{y} {`, the first '{' may belong
        # to an initializer. Detect: a ':' at paren-depth 0 after the param
        # ')' and before brace_idx, with the brace directly following an
        # identifier (aggregate init) rather than a ')' or id-list end.
        name_parts = []
        k = first_paren - 1
        # Gather trailing `A :: B` / `~B` / `operator op` name sequence.
        while k >= 0:
            t = head[k]
            if t.kind == "id" or t.text in ("::", "~"):
                name_parts.append(t.text)
                k -= 1
                # only keep going when the previous token continues the
                # qualified-id chain
                if k >= 0 and (head[k].text == "::" or head[k].text == "~"
                               or (head[k].kind == "id" and
                                   name_parts[-1] == "::")):
                    continue
                if k >= 0 and head[k].kind == "id" and \
                        head[k].text == "operator":
                    continue
                break
            elif t.kind == "punct" and k >= 1 and any(
                    h.kind == "id" and h.text == "operator"
                    for h in head[max(0, k - 2):k]):
                name_parts.append(t.text)
                k -= 1
                continue
            else:
                break
        name_parts.reverse()
        spelled = "".join(name_parts)
        if not spelled:
            # Could not extract a name; treat the brace as opaque.
            return match_brace(toks, brace_idx) + 1
        ret_type = " ".join(t.text for t in head[:k + 1]
                            if t.text not in _SPECIFIERS)
        # Trailer analysis between ')' and the body '{' uses absolute tokens.
        # Find the absolute index of the matching ')' for the params: walk
        # from brace_idx backwards is fragile; instead walk forward from the
        # declaration's absolute start. The absolute position of the first
        # top-level '(' is recoverable: it is the token at the same source
        # line/kind — but head tokens ARE absolute tokens (same objects), so
        # use identity.
        abs_paren = None
        target = head[first_paren]
        # head tokens are the same Token tuples from self.toks; find by
        # scanning near the declaration: tuples are equal by value, so match
        # on (kind, text, line) from the decl's start token.
        # Walk from the token holding the decl start:
        start_line = head[0].line
        for idx in range(max(0, brace_idx - len(head) * 2 - 8), brace_idx):
            t = toks[idx]
            if t is target or (t == target and t.line >= start_line):
                abs_paren = idx
                break
        if abs_paren is None:
            return match_brace(toks, brace_idx) + 1
        params_end = match_paren(toks, abs_paren)
        param_text = " ".join(t.text for t in toks[abs_paren + 1:params_end])
        is_const = False
        body_open = None
        k2 = params_end + 1
        n = len(toks)
        while k2 < n:
            t = toks[k2]
            if t.kind == "pp":
                k2 += 1
                continue
            if t.kind == "id":
                if t.text == "const":
                    is_const = True
                    k2 += 1
                    continue
                if t.text in ("noexcept", "override", "final", "try"):
                    k2 += 1
                    continue
                # part of a trailing return type — skip token
                k2 += 1
                continue
            if t.text == "(":  # noexcept(...)
                k2 = match_paren(toks, k2) + 1
                continue
            if t.text == "->":
                k2 += 1
                continue
            if t.text in ("&", "&&", "*", "::", "<"):
                if t.text == "<":
                    k2 = skip_angles(toks, k2)
                else:
                    k2 += 1
                continue
            if t.text == ":":
                # Constructor initializer list: id ( ... ) or id { ... },
                # comma-separated, then the body '{'.
                k2 += 1
                while k2 < n:
                    t2 = toks[k2]
                    if t2.kind in ("id",) or t2.text in ("::", "<", ">",
                                                         ">>", ","):
                        if t2.text == "<":
                            k2 = skip_angles(toks, k2)
                        else:
                            k2 += 1
                        continue
                    if t2.text == "(":
                        k2 = match_paren(toks, k2) + 1
                        if k2 < n and toks[k2].text == ",":
                            k2 += 1
                        continue
                    if t2.text == "{":
                        # Either an aggregate initializer or the body. An
                        # initializer brace is followed (after matching) by
                        # ',' or '{'-body; the body brace is the one whose
                        # preceding token is ')' or '}' — i.e. when we get
                        # here right after closing an initializer, '{' IS
                        # the body.
                        prev = toks[k2 - 1]
                        if prev.text in (")", "}"):
                            body_open = k2
                            break
                        close = match_brace(toks, k2)
                        k2 = close + 1
                        if k2 < n and toks[k2].text == ",":
                            k2 += 1
                        continue
                    break
                if body_open is not None:
                    break
                continue
            if t.text == "{":
                body_open = k2
                break
            if t.text == ";":
                return k2 + 1  # declaration after all (e.g. trailing ret)
            k2 += 1
        if body_open is None:
            return match_brace(toks, brace_idx) + 1
        body_close = match_brace(toks, body_open)
        # Resolve ownership: qualified `A::B::name` binds to class A::B;
        # unqualified binds to the enclosing class scope if any.
        owner = None
        fname = spelled
        if "::" in spelled:
            prefix, fname = spelled.rsplit("::", 1)
            ns = self._ns_prefix()
            owner = (ns + "::" + prefix) if ns else prefix
        else:
            cls = self._current_class()
            if cls is not None:
                owner = cls.qual_name
                cls.method_decls.append(
                    MethodDecl(name=fname, line=head[0].line,
                               is_const=is_const))
        qual = (owner + "::" + fname) if owner else (
            (self._ns_prefix() + "::" + fname) if self._ns_prefix() else fname)
        self.fm.functions.append(FunctionDef(
            name=fname, qual_name=qual, owner_class=owner,
            file=self.relpath, line=head[0].line, return_type=ret_type,
            is_const=is_const, body=toks[body_open + 1:body_close],
            param_text=param_text))
        return body_close + 1

    def _record_head(self, head, is_def, had_init):
        """Records a ';'-terminated declaration head: method declaration or
        data member / variable."""
        del is_def
        if not head:
            return
        # Top-level '(' (angle-depth 0) => function declaration.
        paren = 0
        angle = 0
        first_paren = None
        for idx, t in enumerate(head):
            if t.kind != "punct":
                continue
            if t.text == "<" and paren == 0:
                angle += 1
            elif t.text == ">" and paren == 0 and angle > 0:
                angle -= 1
            elif t.text == ">>" and paren == 0 and angle > 0:
                angle = max(0, angle - 2)
            elif t.text == "(":
                if paren == 0 and angle == 0 and first_paren is None:
                    first_paren = idx
                paren += 1
            elif t.text == ")":
                paren -= 1
        cls = self._current_class()
        if first_paren is not None:
            k = first_paren - 1
            if k >= 0 and head[k].kind == "id" and cls is not None:
                is_const = any(t.text == "const"
                               for t in head[first_paren:])
                cls.method_decls.append(MethodDecl(
                    name=head[k].text, line=head[0].line, is_const=is_const))
            return
        # Data member / variable: declarator is the last identifier
        # (ignoring trailing array brackets).
        idx = len(head) - 1
        while idx >= 0 and head[idx].kind == "punct" and \
                head[idx].text in ("]", "[",) or (
                    idx >= 0 and head[idx].kind == "num"):
            idx -= 1
        while idx >= 0 and head[idx].kind != "id":
            idx -= 1
        if idx <= 0:
            return  # no type before the name: not a data member
        name = head[idx].text
        if name in _SPECIFIERS or head[idx - 1].text == "::":
            return
        type_toks = [t.text for t in head[:idx]]
        if not type_toks:
            return
        is_static = "static" in type_toks
        is_mutable = "mutable" in type_toks
        type_text = " ".join(t for t in type_toks if t not in _SPECIFIERS)
        if not type_text.strip():
            return
        if cls is not None:
            cls.members.append(Member(
                name=name, type_text=type_text, line=head[idx].line,
                file=self.relpath, is_mutable=is_mutable,
                is_static=is_static))
        del had_init


def parse_file(path, relpath):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return Parser(path, relpath, text).parse()
