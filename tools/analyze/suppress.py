"""The unified suppression grammar shared by mind_lint and the analyzer.

Two annotation forms, both line-comment based and both requiring a written
reason (docs/ANALYSIS.md documents the grammar normatively):

  // mind-lint: allow(<rule>): <reason>
      Suppresses one finding of <rule> on the same line or the line below.

  // mind-digest: skip(<reason>)
      Marks the data member declared on the same line (or the line below)
      as deliberately excluded from its class's DigestInto fold.

A suppression without a reason is itself reported as a finding: silent
opt-outs are exactly what the analyzer exists to prevent.
"""

import re

ALLOW_RE = re.compile(
    r"//\s*mind-lint:\s*allow\((?P<rule>[\w-]+)\)(?::\s*(?P<reason>\S.*))?")
DIGEST_SKIP_RE = re.compile(
    r"//\s*mind-digest:\s*skip\((?P<reason>[^)]*)\)")


class Suppressions:
    """Per-file suppression table, built from the raw source lines."""

    def __init__(self, raw_lines):
        # line number (1-based) -> list of (rule, reason, line_no)
        self.allows = {}
        # line number (1-based) -> reason for a digest skip
        self.digest_skips = {}
        # annotations missing a reason: list of (line_no, kind, detail)
        self.missing_reasons = []
        for idx, line in enumerate(raw_lines):
            ln = idx + 1
            m = ALLOW_RE.search(line)
            if m:
                rule = m.group("rule")
                reason = (m.group("reason") or "").strip()
                if not reason:
                    self.missing_reasons.append(
                        (ln, "allow", rule))
                self.allows.setdefault(ln, []).append((rule, reason))
            m = DIGEST_SKIP_RE.search(line)
            if m:
                reason = m.group("reason").strip()
                if not reason:
                    self.missing_reasons.append((ln, "digest-skip", ""))
                self.digest_skips[ln] = reason

    def allowed(self, line_no, rule):
        """True when `rule` is suppressed for code at `line_no`: the
        annotation sits on the line itself or on the line directly above."""
        for ln in (line_no, line_no - 1):
            for r, _reason in self.allows.get(ln, []):
                if r == rule:
                    return True
        return False

    def digest_skip_reason(self, line_no):
        """The skip reason covering the member declared at `line_no`
        (annotation on the line itself or the line above), or None."""
        for ln in (line_no, line_no - 1):
            if ln in self.digest_skips:
                return self.digest_skips[ln]
        return None
