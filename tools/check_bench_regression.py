#!/usr/bin/env python3
"""Diff BENCH_*.json exports against committed baselines.

Usage:
    tools/check_bench_regression.py --baseline-dir bench/baselines [--current-dir .]
                                    [--threshold 0.15] [--wall-threshold 0.5]
                                    [--update] [FILE ...]

Two file shapes are understood:

  * registry exports (docs/BENCH_SCHEMA.md): gauges with `_per_sec` /
    `speedup*` components are higher-is-better throughput, `wall_seconds` /
    `wall_ms` gauges are lower-is-better elapsed time;
  * google-benchmark `--benchmark_format=json` dumps (BENCH_micro.json):
    each benchmark's `cpu_time` is lower-is-better.

Sim-derived throughput (gauge names containing `_per_sec_sim`) is a pure
function of the seed, so it compares machine-to-machine exactly; a drop
beyond --threshold (default 15%) FAILS the check. Wall-clock-derived
metrics (everything else above, including micro-bench cpu_time) vary with
the host and its load, so they use the looser --wall-threshold (default
50%) — tight enough to catch a pathological regression, loose enough not
to flag a different machine. Run on the same quiet box as the baseline
you can drop --wall-threshold to 0.15 for a true like-for-like gate.

Non-throughput gauges and counters in registry exports are deterministic
per seed; drift there is a behaviour change, not a perf regression, and is
reported as a warning only (the determinism probes and tier-1 tests own
that contract).

Comparisons are skipped with a note (never a failure) when the baseline
file or metric is missing, when the two registry exports disagree on
`run.build_type`, or when the baseline value is zero.

`--update` copies the current files over the baselines instead of
comparing — run it after an intentional perf change and commit the result.
"""

import argparse
import json
import os
import shutil
import sys

GLOB_PREFIX = "BENCH_"
GLOB_SUFFIX = ".json"


def is_throughput_key(name):
    """Higher-is-better rate metrics."""
    parts = name.split(".")
    return "_per_sec" in name or any(p.startswith("speedup") for p in parts)


def is_walltime_key(name):
    """Lower-is-better elapsed-time metrics."""
    return "wall_seconds" in name or "wall_ms" in name


def is_sim_derived(name):
    """Throughput computed from sim time: deterministic per seed."""
    return "_per_sec_sim" in name


def is_host_memory_key(name):
    """Lower-is-better resident-set / pool-footprint gauges. Byte-exact
    values depend on the host allocator and page cache, so they get the
    looser wall band instead of the deterministic-drift warning."""
    return ("rss_per_node_kb" in name
            or (name.startswith("memory.pool.") and name.endswith("_bytes")))


def is_gated_elsewhere(name):
    """Gauges whose acceptance band is an absolute gate inside the bench
    itself (fig22 exits 1 above 10% RSS growth); relative comparison of two
    small percentages is pure noise, so the checker only notes them."""
    return "rss_growth_pct" in name


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def bench_files(directory):
    out = {}
    for entry in sorted(os.listdir(directory)):
        if entry.startswith(GLOB_PREFIX) and entry.endswith(GLOB_SUFFIX):
            out[entry] = os.path.join(directory, entry)
    return out


def check_drop(name, key, base_val, cur_val, threshold, failures, notes):
    """Higher-is-better comparison."""
    if base_val <= 0:
        notes.append(f"{name}: {key} baseline is {base_val}; skipped")
        return
    drop = (base_val - cur_val) / base_val
    if drop > threshold:
        failures.append(
            f"{name}: {key} fell {drop * 100:.1f}% "
            f"({base_val:g} -> {cur_val:g}, threshold {threshold * 100:.0f}%)")


def check_rise(name, key, base_val, cur_val, threshold, failures, notes):
    """Lower-is-better comparison."""
    if base_val <= 0:
        notes.append(f"{name}: {key} baseline is {base_val}; skipped")
        return
    rise = (cur_val - base_val) / base_val
    if rise > threshold:
        failures.append(
            f"{name}: {key} rose {rise * 100:.1f}% "
            f"({base_val:g} -> {cur_val:g}, threshold {threshold * 100:.0f}%)")


def compare_gbench(name, baseline, current, wall_threshold):
    """google-benchmark JSON: per-benchmark cpu_time, lower is better."""
    failures, warnings, notes = [], [], []
    base_times = {b["name"]: b.get("cpu_time", 0.0)
                  for b in baseline.get("benchmarks", [])
                  if b.get("run_type", "iteration") == "iteration"}
    cur_times = {b["name"]: b.get("cpu_time", 0.0)
                 for b in current.get("benchmarks", [])
                 if b.get("run_type", "iteration") == "iteration"}
    for key, base_val in sorted(base_times.items()):
        if key not in cur_times:
            warnings.append(f"{name}: benchmark {key} missing from current run")
            continue
        check_rise(name, key, base_val, cur_times[key], wall_threshold,
                   failures, notes)
    return failures, warnings, notes


def compare_registry(name, baseline, current, threshold, wall_threshold):
    """Registry export (docs/BENCH_SCHEMA.md)."""
    failures, warnings, notes = [], [], []

    base_build = baseline.get("run", {}).get("build_type", "")
    cur_build = current.get("run", {}).get("build_type", "")
    if base_build != cur_build:
        notes.append(
            f"{name}: build_type {cur_build!r} != baseline {base_build!r}; "
            "skipping (not comparable)")
        return failures, warnings, notes

    base_gauges = baseline.get("gauges", {})
    cur_gauges = current.get("gauges", {})
    for key, base_val in sorted(base_gauges.items()):
        if key not in cur_gauges:
            warnings.append(f"{name}: gauge {key} missing from current run")
            continue
        cur_val = cur_gauges[key]
        if is_throughput_key(key):
            limit = threshold if is_sim_derived(key) else wall_threshold
            check_drop(name, key, base_val, cur_val, limit, failures, notes)
        elif is_walltime_key(key) or is_host_memory_key(key):
            check_rise(name, key, base_val, cur_val, wall_threshold,
                       failures, notes)
        elif is_gated_elsewhere(key):
            if cur_val != base_val:
                notes.append(f"{name}: {key} {base_val:g} -> {cur_val:g} "
                             "(gated inside the bench; informational)")
        elif cur_val != base_val:
            warnings.append(
                f"{name}: deterministic gauge {key} drifted "
                f"({base_val:g} -> {cur_val:g})")

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for key, base_val in sorted(base_counters.items()):
        if key in cur_counters and cur_counters[key] != base_val:
            warnings.append(
                f"{name}: counter {key} drifted "
                f"({base_val:g} -> {cur_counters[key]:g})")
    return failures, warnings, notes


def compare_file(name, baseline, current, threshold, wall_threshold):
    if "benchmarks" in baseline or "benchmarks" in current:
        return compare_gbench(name, baseline, current, wall_threshold)
    return compare_registry(name, baseline, current, threshold, wall_threshold)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--current-dir", default=".")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="tolerance for sim-derived throughput (default 0.15)")
    ap.add_argument("--wall-threshold", type=float, default=0.5,
                    help="tolerance for wall-clock metrics (default 0.5)")
    ap.add_argument("--update", action="store_true",
                    help="copy current exports over the baselines and exit")
    ap.add_argument("files", nargs="*",
                    help="restrict to these BENCH_*.json basenames")
    args = ap.parse_args()

    current = bench_files(args.current_dir)
    if args.files:
        wanted = {os.path.basename(f) for f in args.files}
        current = {k: v for k, v in current.items() if k in wanted}
    if not current:
        print("check_bench_regression: no BENCH_*.json files in "
              f"{args.current_dir!r}; nothing to do")
        return 0

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name, path in current.items():
            shutil.copyfile(path, os.path.join(args.baseline_dir, name))
            print(f"updated {os.path.join(args.baseline_dir, name)}")
        return 0

    if not os.path.isdir(args.baseline_dir):
        print(f"check_bench_regression: baseline dir {args.baseline_dir!r} "
              "does not exist; nothing to compare (run with --update to seed)")
        return 0

    baselines = bench_files(args.baseline_dir)
    all_failures, all_warnings = [], []
    compared = 0
    for name, path in current.items():
        if name not in baselines:
            print(f"note: {name} has no baseline; skipped")
            continue
        failures, warnings, notes = compare_file(
            name, load(baselines[name]), load(path),
            args.threshold, args.wall_threshold)
        compared += 1
        for n in notes:
            print(f"note: {n}")
        all_failures.extend(failures)
        all_warnings.extend(warnings)

    for w in all_warnings:
        print(f"WARNING: {w}")
    for f in all_failures:
        print(f"FAIL: {f}")
    print(f"check_bench_regression: compared {compared} file(s), "
          f"{len(all_failures)} failure(s), {len(all_warnings)} warning(s)")
    return 1 if all_failures else 0


if __name__ == "__main__":
    sys.exit(main())
