#!/usr/bin/env bash
# Deterministic-replay check.
#
# Builds the repo twice -- telemetry ON (the default) and telemetry OFF --
# and runs tools/determinism_probe in each configuration. The probe prints
# `state_digest <hex16>` after a fixed seeded scenario; this script fails if
#   (a) two runs of the same binary disagree (nondeterminism within a build:
#       wall-clock leak, unseeded randomness, unordered-container ordering), or
#   (b) the telemetry-ON and telemetry-OFF digests disagree (telemetry
#       recording changed simulation behaviour), or
#   (c) the sequential engine under the determinism discipline
#       (`--discipline`) and the sharded parallel engine at worker thread
#       counts 1, 2, 4 and 8 (`--threads=N`) disagree with each other
#       (engine identity: the parallel engine must compute the exact same
#       world as the sequential discipline it refines), or
#   (d) the front-end-driven scenario (`--frontend`: streaming ingest +
#       admission-controlled query service) disagrees run to run or across
#       MIND_TELEMETRY settings, or
#   (e) any index backend (MIND_BACKEND=sorted|bitmap|adaptive) disagrees
#       with the default run, or the legacy digest drifts from its pinned
#       value -- backends are physical layout only (docs/BACKENDS.md) and
#       must be invisible to the simulation, or
#   (f) the pinned legacy digest fails to survive an MSN1 snapshot
#       save/load cycle (`--snapshot-roundtrip`: the restore's internal
#       digest gate plus the printed pre-snapshot digest), serial and
#       parallel -- week-long campaigns must resume bit-identically.
#
# The flagless (legacy-mode) digest is intentionally distinct from the
# discipline digest: the discipline switches jitter to counter-based per-link
# RNG streams and keyed event ordering. Checks (a)/(b) pin the legacy digest;
# check (c) pins the engine family to one another.
#
# Usage: tools/check_determinism.sh [build-dir]   (default: build-determinism)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-determinism}"

digest() {  # digest <binary> [flags...]  -> prints the hex digest
  local bin="$1"; shift
  local out
  out="$("${bin}" "$@" | grep '^state_digest ' | awk '{print $2}')"
  if [[ -z "${out}" ]]; then
    echo "error: ${bin} $* printed no state_digest" >&2
    exit 1
  fi
  echo "${out}"
}

echo "== configure + build (telemetry ON) =="
cmake -B "${BUILD}/on" -S . -DMIND_TELEMETRY=ON >/dev/null
cmake --build "${BUILD}/on" --target determinism_probe -j >/dev/null

echo "== configure + build (telemetry OFF) =="
cmake -B "${BUILD}/off" -S . -DMIND_TELEMETRY=OFF >/dev/null
cmake --build "${BUILD}/off" --target determinism_probe -j >/dev/null

run1="$(digest "${BUILD}/on/tools/determinism_probe")"
run2="$(digest "${BUILD}/on/tools/determinism_probe")"
run_off="$(digest "${BUILD}/off/tools/determinism_probe")"

echo "run 1 (telemetry on):  ${run1}"
echo "run 2 (telemetry on):  ${run2}"
echo "run 3 (telemetry off): ${run_off}"

fail=0
if [[ "${run1}" != "${run2}" ]]; then
  echo "FAIL: two runs of the same binary diverged -- the simulation is" \
       "nondeterministic (check mind_lint and recent unordered iteration)" >&2
  fail=1
fi
if [[ "${run1}" != "${run_off}" ]]; then
  echo "FAIL: telemetry ON and OFF builds diverged -- some recording call" \
       "changes simulation state (telemetry must be observation-only)" >&2
  fail=1
fi
echo
echo "== front-end replay (ingest pipeline + admission-controlled queries) =="
fe1="$(digest "${BUILD}/on/tools/determinism_probe" --frontend)"
fe2="$(digest "${BUILD}/on/tools/determinism_probe" --frontend)"
fe_off="$(digest "${BUILD}/off/tools/determinism_probe" --frontend)"
echo "frontend run 1 (telemetry on):  ${fe1}"
echo "frontend run 2 (telemetry on):  ${fe2}"
echo "frontend run 3 (telemetry off): ${fe_off}"
if [[ "${fe1}" != "${fe2}" ]]; then
  echo "FAIL: two front-end runs diverged -- src/frontend leaked" \
       "nondeterminism (unordered lane/queue iteration?)" >&2
  fail=1
fi
if [[ "${fe1}" != "${fe_off}" ]]; then
  echo "FAIL: front-end digests differ across MIND_TELEMETRY settings --" \
       "a frontend.* recording call changes simulation state" >&2
  fail=1
fi

echo
echo "== backend identity (MIND_BACKEND replay legs) =="
# The refactor that introduced the backend seam must never move the legacy
# digest: pin it, then replay once per backend and require bit-identity.
PINNED="5a64d0dabbca0731"
if [[ "${run1}" != "${PINNED}" ]]; then
  echo "FAIL: legacy digest ${run1} != pinned ${PINNED} -- the default" \
       "replay changed behaviour (not just layout)" >&2
  fail=1
fi
for b in sorted bitmap adaptive; do
  db="$(MIND_BACKEND="${b}" digest "${BUILD}/on/tools/determinism_probe")"
  echo "MIND_BACKEND=${b}:  ${db}"
  if [[ "${db}" != "${run1}" ]]; then
    echo "FAIL: backend '${b}' diverged from the default replay digest --" \
         "an IndexBackend leaked layout into simulation-visible state" \
         "(scan counters, reply content, or digest folds)" >&2
    fail=1
  fi
done

echo
echo "== engine identity (sequential discipline vs parallel thread counts) =="
probe="${BUILD}/on/tools/determinism_probe"
disc="$(digest "${probe}" --discipline)"
echo "discipline (serial): ${disc}"
for t in 1 2 4 8; do
  dt="$(digest "${probe}" --threads="${t}")"
  echo "threads=${t}:           ${dt}"
  if [[ "${dt}" != "${disc}" ]]; then
    echo "FAIL: parallel engine at ${t} thread(s) diverged from the" \
         "sequential discipline digest -- a shard executed something the" \
         "conservative window should have forbidden" >&2
    fail=1
  fi
done

echo
echo "== snapshot roundtrip (MSN1 save/load must preserve the digests) =="
snap="$(digest "${probe}" --snapshot-roundtrip)"
echo "legacy through save/load:     ${snap}"
if [[ "${snap}" != "${PINNED}" ]]; then
  echo "FAIL: legacy digest ${snap} != pinned ${PINNED} after a snapshot" \
       "save/load cycle -- the MSN1 format dropped or distorted state" >&2
  fail=1
fi
snap_par="$(digest "${probe}" --threads=4 --snapshot-roundtrip)"
echo "threads=4 through save/load:  ${snap_par}"
if [[ "${snap_par}" != "${disc}" ]]; then
  echo "FAIL: parallel digest ${snap_par} != engine digest ${disc} after a" \
       "snapshot save/load cycle" >&2
  fail=1
fi

if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo
echo "OK: deterministic replay verified (legacy ${run1}, engine ${disc})"
