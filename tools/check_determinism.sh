#!/usr/bin/env bash
# Deterministic-replay check.
#
# Builds the repo twice -- telemetry ON (the default) and telemetry OFF --
# and runs tools/determinism_probe in each configuration. The probe prints
# `state_digest <hex16>` after a fixed seeded scenario; this script fails if
#   (a) two runs of the same binary disagree (nondeterminism within a build:
#       wall-clock leak, unseeded randomness, unordered-container ordering), or
#   (b) the telemetry-ON and telemetry-OFF digests disagree (telemetry
#       recording changed simulation behaviour).
#
# Usage: tools/check_determinism.sh [build-dir]   (default: build-determinism)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-determinism}"

digest() {  # digest <binary>  -> prints the hex digest, fails loudly otherwise
  local out
  out="$("$1" | grep '^state_digest ' | awk '{print $2}')"
  if [[ -z "${out}" ]]; then
    echo "error: $1 printed no state_digest" >&2
    exit 1
  fi
  echo "${out}"
}

echo "== configure + build (telemetry ON) =="
cmake -B "${BUILD}/on" -S . -DMIND_TELEMETRY=ON >/dev/null
cmake --build "${BUILD}/on" --target determinism_probe -j >/dev/null

echo "== configure + build (telemetry OFF) =="
cmake -B "${BUILD}/off" -S . -DMIND_TELEMETRY=OFF >/dev/null
cmake --build "${BUILD}/off" --target determinism_probe -j >/dev/null

run1="$(digest "${BUILD}/on/tools/determinism_probe")"
run2="$(digest "${BUILD}/on/tools/determinism_probe")"
run_off="$(digest "${BUILD}/off/tools/determinism_probe")"

echo "run 1 (telemetry on):  ${run1}"
echo "run 2 (telemetry on):  ${run2}"
echo "run 3 (telemetry off): ${run_off}"

fail=0
if [[ "${run1}" != "${run2}" ]]; then
  echo "FAIL: two runs of the same binary diverged -- the simulation is" \
       "nondeterministic (check mind_lint and recent unordered iteration)" >&2
  fail=1
fi
if [[ "${run1}" != "${run_off}" ]]; then
  echo "FAIL: telemetry ON and OFF builds diverged -- some recording call" \
       "changes simulation state (telemetry must be observation-only)" >&2
  fail=1
fi
if [[ "${fail}" -ne 0 ]]; then
  exit 1
fi
echo "OK: deterministic replay verified (digest ${run1})"
