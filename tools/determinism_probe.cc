// Deterministic-replay probe: runs a fixed, fully-seeded fig07-style
// scenario — the 34-node Abilene+GEANT deployment, a two-minute trace slice
// of inserts, and a handful of range queries — with periodic invariant
// validation piggybacked on the event loop, then prints the final state
// digest on stdout as `state_digest <hex16>`.
//
// tools/check_determinism.sh runs this binary repeatedly (across processes
// and across MIND_TELEMETRY settings) and fails on any digest mismatch. The
// digest covers logical state only (overlay codes, stored tuples, pending
// events, version chains), so telemetry ON and OFF builds must agree.
//
// Flags:
//   --discipline    run the sequential engine under the determinism
//                   discipline (counter RNG + keyed event ordering)
//   --threads=N     run the sharded parallel engine with N worker threads
//                   (implies the discipline)
// The script asserts that --discipline and every --threads=N value print the
// SAME digest (engine identity), and that the flagless legacy digest is
// unchanged across builds (no regression of historical replay digests).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"

using namespace mind;
using namespace mind::bench;

int main(int argc, char** argv) {
  int threads = 0;
  bool discipline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--discipline") == 0) {
      discipline = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr, "usage: %s [--discipline] [--threads=N]\n", argv[0]);
      return 2;
    }
  }

  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 707;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 4242;
  mopts.sim.threads = threads;
  mopts.sim.deterministic_discipline = discipline;
  mopts.overlay.heartbeat_interval = FromSeconds(5);
  mopts.mind.replication = 1;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  // In validator builds this aborts the run on the first structural
  // violation; in Release it is a no-op and only the digest matters.
  net.EnablePeriodicValidation(FromSeconds(10));

  Status st = net.Build();
  if (!st.ok()) {
    std::fprintf(stderr, "overlay build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  CreatePaperIndices(net);

  TraceDriveOptions topts;
  topts.day = 0;
  topts.t0_sec = 39600;
  topts.t1_sec = 39600 + 120;
  DriveTrace(net, gen, topts);

  Rng qrng(99);
  const IndexDef def = MakeIndex1({});
  for (size_t i = 0; i < 5; ++i) {
    Rect rect = RandomMonitoringQuery(&qrng, def, 39600 + 120);
    (void)RunQueryBlocking(net, i % net.size(), "index1_fanout", rect);
  }
  net.sim().RunFor(FromSeconds(30));

  st = net.ValidateInvariants(/*quiescent=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "final validation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("state_digest %s\n", DigestToHex(net.StateDigest()).c_str());
  return 0;
}
