// Deterministic-replay probe: runs a fixed, fully-seeded fig07-style
// scenario — the 34-node Abilene+GEANT deployment, a two-minute trace slice
// of inserts, and a handful of range queries — with periodic invariant
// validation piggybacked on the event loop, then prints the final state
// digest on stdout as `state_digest <hex16>`.
//
// tools/check_determinism.sh runs this binary repeatedly (across processes
// and across MIND_TELEMETRY settings) and fails on any digest mismatch. The
// digest covers logical state only (overlay codes, stored tuples, pending
// events, version chains), so telemetry ON and OFF builds must agree.
//
// Flags:
//   --discipline    run the sequential engine under the determinism
//                   discipline (counter RNG + keyed event ordering)
//   --threads=N     run the sharded parallel engine with N worker threads
//                   (implies the discipline)
//   --frontend      drive inserts and queries through the live front-end
//                   (src/frontend) instead of the closed-loop harness:
//                   streaming ingest with batching plus the admission-
//                   controlled query service with standing queries and
//                   deadline cancellations
//   --snapshot-roundtrip
//                   after the scenario, push the final state through an MSN1
//                   SaveSnapshot/LoadSnapshot cycle into a fresh net; the
//                   load's internal digest gate makes any divergence a hard
//                   failure, and the digest printed is the pre-snapshot one,
//                   so the pinned legacy digest must survive the cycle
// The script asserts that --discipline and every --threads=N value print the
// SAME digest (engine identity), that the flagless legacy digest is
// unchanged across builds (no regression of historical replay digests), and
// that the --frontend digest is reproducible run to run and across
// MIND_TELEMETRY settings.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "bench/common.h"
#include "frontend/frontend.h"

using namespace mind;
using namespace mind::bench;

namespace {

// Frontend-driven scenario: the same 34-node deployment, but the two-minute
// trace slice streams through the ingest pipeline (batched InsertBatch
// trains, drop/defer back-pressure) and the queries go through admission
// control — standing queries included, so version epochs and service
// deadlines are all on the digested path.
int RunFrontendScenario(MindNet& net, const Topology& topo) {
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 707;
  FlowGenerator gen(topo, gopts);
  auto source = std::make_unique<frontend::GeneratorTraceSource>(
      &gen, /*day=*/0, 39600.0, 39600.0 + 120.0);

  frontend::FrontendOptions fopts;
  fopts.ingest.batcher.batch_max_tuples = 8;
  fopts.ingest.batcher.queue_max_tuples = 64;
  fopts.query.max_inflight = 4;
  fopts.query.max_queue = 8;
  fopts.query.per_client_quota = 3;
  fopts.query.default_deadline = FromSeconds(10);
  frontend::Frontend fe(&net, std::move(source), fopts);

  const IndexDef def = MakeIndex1({});
  frontend::ClientId c0 = fe.queries().RegisterClient(0);
  frontend::ClientId c1 = fe.queries().RegisterClient(7);
  auto sink = [](const frontend::Delivery&) {};
  Rng srng(41);
  (void)fe.queries().AddStanding(c0, "index1_fanout",
                                 RandomMonitoringQuery(&srng, def, 39720),
                                 FromSeconds(20), sink);
  Rng qrng(99);
  for (int i = 0; i < 12; ++i) {
    Rect rect = RandomMonitoringQuery(&qrng, def, 39600 + 120);
    net.sim().events().Schedule(
        FromSeconds(5 + 9 * i), [&fe, c0, c1, i, rect, &sink] {
          (void)fe.queries().Submit(i % 2 ? c0 : c1, "index1_fanout", rect,
                                    sink, i % 3 == 0 ? FromMillis(50) : 0);
        });
  }

  fe.Start();
  net.sim().RunFor(FromSeconds(150));
  for (int i = 0; i < 40 && !fe.ingest().done(); ++i) {
    net.sim().RunFor(FromSeconds(5));
  }
  net.sim().RunFor(FromSeconds(30));
  if (!fe.ingest().source_status().ok()) {
    std::fprintf(stderr, "frontend trace error: %s\n",
                 fe.ingest().source_status().ToString().c_str());
    return 1;
  }

  Status st = net.ValidateInvariants(/*quiescent=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "final validation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("state_digest %s\n", DigestToHex(net.StateDigest()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;
  bool discipline = false;
  bool use_frontend = false;
  bool snapshot_roundtrip = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--discipline") == 0) {
      discipline = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--frontend") == 0) {
      use_frontend = true;
    } else if (std::strcmp(argv[i], "--snapshot-roundtrip") == 0) {
      snapshot_roundtrip = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--discipline] [--threads=N] [--frontend] "
                   "[--snapshot-roundtrip]\n",
                   argv[0]);
      return 2;
    }
  }
  if (use_frontend && snapshot_roundtrip) {
    std::fprintf(stderr,
                 "--snapshot-roundtrip applies to the closed-loop scenario "
                 "only (drop --frontend)\n");
    return 2;
  }

  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 707;
  FlowGenerator gen(topo, gopts);

  MindNetOptions mopts;
  mopts.sim.seed = 4242;
  mopts.sim.threads = threads;
  mopts.sim.deterministic_discipline = discipline;
  mopts.overlay.heartbeat_interval = FromSeconds(5);
  mopts.mind.replication = 1;
  mopts.positions = topo.Positions();
  MindNet net(topo.size(), mopts);
  // In validator builds this aborts the run on the first structural
  // violation; in Release it is a no-op and only the digest matters.
  net.EnablePeriodicValidation(FromSeconds(10));

  Status st = net.Build();
  if (!st.ok()) {
    std::fprintf(stderr, "overlay build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  CreatePaperIndices(net);

  if (use_frontend) return RunFrontendScenario(net, topo);

  TraceDriveOptions topts;
  topts.day = 0;
  topts.t0_sec = 39600;
  topts.t1_sec = 39600 + 120;
  DriveTrace(net, gen, topts);

  Rng qrng(99);
  const IndexDef def = MakeIndex1({});
  for (size_t i = 0; i < 5; ++i) {
    Rect rect = RandomMonitoringQuery(&qrng, def, 39600 + 120);
    (void)RunQueryBlocking(net, i % net.size(), "index1_fanout", rect);
  }
  net.sim().RunFor(FromSeconds(30));

  st = net.ValidateInvariants(/*quiescent=*/true);
  if (!st.ok()) {
    std::fprintf(stderr, "final validation failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const uint64_t final_digest = net.StateDigest();

  if (snapshot_roundtrip) {
    // Quiescence is a window (heartbeat messages are periodically in
    // flight): step in 100 ms increments until SaveSnapshot accepts. The
    // digest printed below is the pre-snapshot one, so stepping here cannot
    // move the pinned value.
    std::ostringstream buf;
    Status save = Status::OK();
    bool saved = false;
    for (int i = 0; i < 200 && !saved; ++i) {
      std::ostringstream attempt;
      save = net.SaveSnapshot(attempt);
      if (save.ok()) {
        buf.str(attempt.str());
        saved = true;
      } else {
        net.sim().RunFor(FromMillis(100));
      }
    }
    if (!saved) {
      std::fprintf(stderr, "snapshot never reached a quiescent window: %s\n",
                   save.ToString().c_str());
      return 1;
    }
    MindNet restored(topo.size(), mopts);
    std::istringstream in(buf.str());
    // LoadSnapshot recomputes StateDigest and refuses the restore unless it
    // is bit-identical to the digest recorded at save time.
    Status load = restored.LoadSnapshot(in);
    if (!load.ok()) {
      std::fprintf(stderr, "snapshot roundtrip failed: %s\n",
                   load.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot_roundtrip ok (%zu bytes)\n",
                 buf.str().size());
  }

  std::printf("state_digest %s\n", DigestToHex(final_digest).c_str());
  return 0;
}
