// frontend_runner: drives the live front-end end to end on one deployment —
// trace replay through the streaming ingest pipeline plus a concurrent query
// workload through the admission-controlled query service — and prints a
// run summary (README "Front-end quick start").
//
// Modes:
//   --dump-trace=FILE   generate a synthetic flow trace and write it as an
//                       MFT1 binary file (see src/traffic/trace_io.h), then
//                       exit. Pairs with --minutes.
//   (default)           replay a trace into the paper's three indices on an
//                       Abilene+GEANT deployment while clients submit
//                       on-demand and standing range queries.
//
// Flags:
//   --trace=FILE    replay this MFT1 file instead of generating traffic
//   --minutes=M     trace window length (default 3)
//   --rate=X        replay rate multiplier (default 1.0; 2 = twice as fast)
//   --clients=N     query clients (default 8)
//   --defer         lossless back-pressure (default: drop-newest)
//
// Everything runs on the deterministic sequential engine: rerunning the same
// command reproduces the same numbers exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "bench/common.h"
#include "frontend/frontend.h"

using namespace mind;
using namespace mind::bench;

namespace {

struct Args {
  std::string dump_trace;
  std::string trace;
  double minutes = 3.0;
  double rate = 1.0;
  size_t clients = 8;
  bool defer = false;
};

bool Parse(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--dump-trace=", 13) == 0) {
      out->dump_trace = a + 13;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      out->trace = a + 8;
    } else if (std::strncmp(a, "--minutes=", 10) == 0) {
      out->minutes = std::atof(a + 10);
    } else if (std::strncmp(a, "--rate=", 7) == 0) {
      out->rate = std::atof(a + 7);
    } else if (std::strncmp(a, "--clients=", 10) == 0) {
      out->clients = static_cast<size_t>(std::atoi(a + 10));
    } else if (std::strcmp(a, "--defer") == 0) {
      out->defer = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--dump-trace=FILE] [--trace=FILE] "
                   "[--minutes=M] [--rate=X] [--clients=N] [--defer]\n",
                   argv[0]);
      return false;
    }
  }
  return out->minutes > 0 && out->rate > 0 && out->clients > 0;
}

constexpr double kT0Sec = 39600;  // trace window starts at 11:00

int DumpTrace(const Args& args) {
  Topology topo = Topology::AbileneGeant();
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 0xF10F21;
  FlowGenerator gen(topo, gopts);
  frontend::GeneratorTraceSource source(&gen, /*day=*/0, kT0Sec,
                                        kT0Sec + args.minutes * 60.0);
  std::vector<FlowRecord> flows;
  FlowRecord r;
  while (true) {
    auto more = source.Next(&r);
    if (!more.ok() || !more.value()) break;
    flows.push_back(r);
  }
  std::ofstream out(args.dump_trace, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 args.dump_trace.c_str());
    return 1;
  }
  Status st = WriteFlowsBinary(out, flows);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu records (%.1f trace minutes) to %s\n", flows.size(),
              args.minutes, args.dump_trace.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) return 2;
  if (!args.dump_trace.empty()) return DumpTrace(args);

  Topology topo = Topology::AbileneGeant();
  DeploymentOptions dopts;
  dopts.seed = 0xF0E21;
  auto net = MakeDeployment(topo, dopts);
  CreatePaperIndices(*net);

  // Source: the MFT1 file if given, synthetic generation otherwise.
  std::ifstream trace_file;
  FlowGeneratorOptions gopts;
  gopts.peak_flows_per_router_sec = 40;
  gopts.seed = 0xF10F21;
  FlowGenerator gen(topo, gopts);
  std::unique_ptr<frontend::TraceSource> source;
  if (!args.trace.empty()) {
    trace_file.open(args.trace, std::ios::binary);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace %s\n", args.trace.c_str());
      return 1;
    }
    source = std::make_unique<frontend::BinaryTraceSource>(&trace_file);
  } else {
    source = std::make_unique<frontend::GeneratorTraceSource>(
        &gen, /*day=*/0, kT0Sec, kT0Sec + args.minutes * 60.0);
  }

  frontend::FrontendOptions fopts;
  fopts.ingest.rate_multiplier = args.rate;
  fopts.ingest.batcher.policy = args.defer
                                    ? frontend::OverflowPolicy::kDefer
                                    : frontend::OverflowPolicy::kDropNewest;
  fopts.query.max_inflight = 16;
  fopts.query.per_client_quota = 4;
  fopts.query.max_cost_tuples = 1000;
  frontend::Frontend fe(net.get(), std::move(source), fopts);

  std::vector<frontend::ClientId> clients;
  for (size_t c = 0; c < args.clients; ++c) {
    clients.push_back(
        fe.queries().RegisterClient(static_cast<NodeId>(c % net->size())));
  }

  const IndexDef defs[3] = {MakeIndex1({}), MakeIndex2({}), MakeIndex3({})};
  const char* names[3] = {"index1_fanout", "index2_octets", "index3_flowsize"};
  uint64_t delivered = 0;
  auto sink = [&delivered](const frontend::Delivery& d) {
    delivered += d.tuples.size();
  };

  // One standing query per index from client 0, plus a steady on-demand
  // stream: every client submits one monitoring query per replayed second.
  for (int i = 0; i < 3; ++i) {
    Rng srng(0x5741 + static_cast<uint64_t>(i));
    (void)fe.queries().AddStanding(
        clients[0], names[i],
        RandomMonitoringQuery(&srng, defs[i], kT0Sec + args.minutes * 60.0),
        FromSeconds(10), sink);
  }
  Rng qrng(0x9021);
  const double drive_sec = args.minutes * 60.0 / args.rate;
  for (double t = 1.0; t < drive_sec; t += 1.0) {
    for (size_t c = 0; c < clients.size(); ++c) {
      const int which = static_cast<int>((static_cast<size_t>(t) + c) % 3);
      Rect rect = RandomMonitoringQuery(
          &qrng, defs[which], static_cast<uint64_t>(kT0Sec + t * args.rate));
      net->sim().events().Schedule(
          FromSeconds(t + 0.03 * static_cast<double>(c)),
          [&fe, &clients, c, which, rect, &names, &sink] {
            (void)fe.queries().Submit(clients[c], names[which], rect, sink);
          });
    }
  }

  fe.Start();
  net->sim().RunFor(FromSeconds(drive_sec));
  for (int i = 0; i < 200 && !fe.ingest().done(); ++i) {
    net->sim().RunFor(FromSeconds(5));
  }
  net->sim().RunFor(FromSeconds(45));  // settle in-flight queries

  if (!fe.ingest().source_status().ok()) {
    std::fprintf(stderr, "trace error: %s\n",
                 fe.ingest().source_status().ToString().c_str());
  }

  auto& sm = net->sim().metrics();
  const auto& qs = fe.queries();
  const auto& ig = fe.ingest();
  std::printf("=== frontend_runner: %.1f trace minutes at %.1fx on %zu nodes ===\n",
              args.minutes, args.rate, net->size());
  std::printf("ingest:  %llu records -> %llu tuples, %llu batches "
              "(%llu dropped, %llu defer rounds)\n",
              static_cast<unsigned long long>(ig.records_in()),
              static_cast<unsigned long long>(ig.tuples_out()),
              static_cast<unsigned long long>(ig.batches_sent()),
              static_cast<unsigned long long>(ig.tuples_dropped()),
              static_cast<unsigned long long>(ig.defer_rounds()));
  std::printf("queries: admitted=%llu rejected=%llu completed=%llu "
              "deadline-cancels=%llu, %llu tuples delivered\n",
              static_cast<unsigned long long>(qs.admitted_total()),
              static_cast<unsigned long long>(qs.rejected_total()),
              static_cast<unsigned long long>(qs.completed_total()),
              static_cast<unsigned long long>(qs.deadline_cancels()),
              static_cast<unsigned long long>(delivered));
  PrintLatencyRowHist("service latency",
                      sm.histogram("frontend.query.latency_ms"));
  return fe.ingest().source_status().ok() ? 0 : 1;
}
