#!/usr/bin/env python3
"""MIND-specific determinism lints: the fast, zero-dependency regex pre-pass.

The simulator is a deterministic discrete-event world: identical seeds must
produce bit-identical runs on every stdlib (tools/check_determinism.sh checks
the end state). These classes of source-level hazard break that promise, and
this lint bans them in the simulation-facing directories:

  wall-clock   -- std::chrono::system_clock, time(), gettimeofday, ...
                  Virtual time comes from EventQueue::now(); real time must
                  never leak into simulation state.
  libc-rand    -- rand(), srand(), std::random_device. All randomness flows
                  through the seeded mind::Rng.
  telemetry-divergence -- branching on MIND_TELEMETRY_DISABLED outside
                  src/telemetry. Simulation logic must behave identically
                  whether telemetry is compiled in or not; only the telemetry
                  subsystem itself may test the flag.
  concurrency  -- raw threading primitives (std::thread, std::mutex,
                  std::atomic, <thread>/<mutex>/<atomic> includes, ...) outside
                  src/sim/parallel_engine.*. The parallel engine is the single
                  place where threads exist; everywhere else determinism rests
                  on single-threaded shard execution, and an ad-hoc lock or
                  atomic would hide a cross-shard ordering dependency the
                  engine cannot see.
  raw-alloc    -- `new`/malloc/std::make_shared on the pooled hot paths
                  (src/sim, src/overlay).
                  Message and event payloads there flow through pool::Allocate
                  (sim/message.h MakeMessage, sim/event_fn.h EventFn,
                  DESIGN.md §14); a raw heap allocation silently reopens the
                  general-heap churn the pools eliminate. Placement new
                  (`::new (p) T`) stays legal -- it is how the pools construct
                  into their own storage.

Semantic contracts that need real declaration/type analysis (digest-coverage,
backend-purity, phase-safety, and the type-resolved unordered-emit rule that
replaced this script's old regex pass) live in tools/analyze/ — run
tools/run_analyze.sh, which chains this pre-pass and the analyzer.

Suppressions use the unified grammar (docs/ANALYSIS.md):

  // mind-lint: allow(<rule>): <reason>

on the offending line or the line above it. The reason is mandatory; an
allow() without one is itself reported as a finding.

Exit status: 0 when clean, 1 with one "file:line: [rule] message" per finding.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from analyze.suppress import Suppressions  # noqa: E402  (shared grammar)

LINT_DIRS = ["src/sim", "src/overlay", "src/mind", "src/space", "src/storage",
             "src/frontend"]
TELEMETRY_EXEMPT = "src/telemetry"
# The one engine boundary allowed to hold threading primitives (matches
# parallel_engine.h and parallel_engine.cc).
CONCURRENCY_EXEMPT = "src/sim/parallel_engine"

TOKEN_RULES = [
    ("wall-clock", re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "wall-clock reads are forbidden; use EventQueue::now() virtual time"),
    ("wall-clock", re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
     "wall-clock reads are forbidden; use EventQueue::now() virtual time"),
    ("wall-clock", re.compile(r"(\b|::)time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "libc time() is forbidden; use EventQueue::now() virtual time"),
    ("libc-rand", re.compile(r"\b(rand|srand)\s*\(\s*(\)|\w)"),
     "libc randomness is forbidden; use the seeded mind::Rng"),
    ("libc-rand", re.compile(r"\brandom_device\b"),
     "std::random_device is unseedable; use the seeded mind::Rng"),
]

# Applied everywhere in LINT_DIRS except CONCURRENCY_EXEMPT files.
CONCURRENCY_RULES = [
    ("concurrency",
     re.compile(r"#\s*include\s*<(thread|mutex|shared_mutex|atomic|"
                r"condition_variable|future|semaphore|barrier|latch|"
                r"stop_token)>"),
     "threading headers are confined to src/sim/parallel_engine.*; "
     "simulation code runs single-threaded within its shard"),
    ("concurrency",
     re.compile(r"std::(jthread|thread|mutex|shared_mutex|recursive_mutex|"
                r"timed_mutex|recursive_timed_mutex|condition_variable\w*|"
                r"atomic\w*|future|shared_future|promise|async|"
                r"counting_semaphore|binary_semaphore|barrier|latch|"
                r"lock_guard|unique_lock|scoped_lock|shared_lock|call_once|"
                r"once_flag|memory_order\w*|this_thread)\b"),
     "threading primitives are confined to src/sim/parallel_engine.*; "
     "an ad-hoc lock or atomic would hide a cross-shard ordering "
     "dependency the engine cannot see"),
]

# Pooled allocation fence: message/event payloads in these directories go
# through pool::Allocate (MakeMessage / EventFn), so the pool telemetry's
# "zero allocations outside pools" claim stays honest. The `new` pattern
# deliberately skips placement new (`::new (p) T` / `new (mem) T`): the
# lookbehind rejects `::new`, and a `(` after the keyword never matches.
POOLED_DIRS = ("src/sim", "src/overlay")
RAW_ALLOC_RULES = [
    ("raw-alloc",
     re.compile(r"\b(malloc|calloc|realloc|aligned_alloc|posix_memalign|"
                r"strdup)\s*\("),
     "libc heap allocation is banned on pooled paths; allocate through "
     "pool::Allocate (sim/message.h MakeMessage, sim/event_fn.h EventFn)"),
    ("raw-alloc",
     re.compile(r"(?<!:)\bnew\s+[A-Za-z_:]"),
     "raw `new` is banned on pooled paths; allocate through MakeMessage / "
     "EventFn / pool::Allocate (placement `::new (p) T` is allowed)"),
    ("raw-alloc",
     re.compile(r"\bmake_shared\s*<"),
     "std::make_shared puts message payloads on the general heap; construct "
     "messages with MakeMessage (pool-backed allocate_shared)"),
]


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments (keeps the line length
    stable so column-free reporting still points at the right line)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path, relpath, findings):
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    code = [strip_comments_and_strings(ln) for ln in raw]
    sup = Suppressions(raw)

    relpath_norm = relpath.replace(os.sep, "/")
    rules = list(TOKEN_RULES)
    if CONCURRENCY_EXEMPT not in relpath_norm:
        rules += CONCURRENCY_RULES
    if any(relpath_norm.startswith(d + "/") for d in POOLED_DIRS):
        rules += RAW_ALLOC_RULES
    for idx, line in enumerate(code):
        for rule, rx, msg in rules:
            if rx.search(line) and not sup.allowed(idx + 1, rule):
                findings.append(f"{relpath}:{idx + 1}: [{rule}] {msg}")
        if TELEMETRY_EXEMPT not in relpath_norm:
            if ("MIND_TELEMETRY_DISABLED" in line
                    and not sup.allowed(idx + 1, "telemetry-divergence")):
                findings.append(
                    f"{relpath}:{idx + 1}: [telemetry-divergence] simulation "
                    "code may not branch on the telemetry build flag; only "
                    "src/telemetry may test MIND_TELEMETRY_DISABLED")

    # Unified grammar hygiene: a suppression without a written reason is a
    # silent opt-out, which is exactly what the annotations exist to prevent.
    for line_no, kind, detail in sup.missing_reasons:
        if kind == "allow":
            findings.append(
                f"{relpath}:{line_no}: [suppression-reason] "
                f"'mind-lint: allow({detail})' has no reason; write "
                f"'// mind-lint: allow({detail}): <why>'")
        else:
            findings.append(
                f"{relpath}:{line_no}: [suppression-reason] "
                "'mind-digest: skip()' has no reason; write "
                "'// mind-digest: skip(<why>)'")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()

    findings = []
    checked = 0
    for d in LINT_DIRS:
        base = os.path.join(args.root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                lint_file(path, os.path.relpath(path, args.root), findings)
                checked += 1

    if findings:
        for f in findings:
            print(f)
        print(f"mind_lint: {len(findings)} finding(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"mind_lint: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
