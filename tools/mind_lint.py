#!/usr/bin/env python3
"""MIND-specific determinism lints.

The simulator is a deterministic discrete-event world: identical seeds must
produce bit-identical runs on every stdlib (tools/check_determinism.sh checks
the end state). Three classes of source-level hazard break that promise, and
this lint bans them in the simulation-facing directories:

  wall-clock   -- std::chrono::system_clock, time(), gettimeofday, ...
                  Virtual time comes from EventQueue::now(); real time must
                  never leak into simulation state.
  libc-rand    -- rand(), srand(), std::random_device. All randomness flows
                  through the seeded mind::Rng.
  unordered-emit -- range-for over an unordered_{map,set} member whose body
                  sends messages or schedules events. Hash-table iteration
                  order differs across stdlibs, so the emission order (and
                  with it RNG consumption and tie-breaks downstream) would
                  too. Iterate util/ordered.h's SortedKeys() instead.
  telemetry-divergence -- branching on MIND_TELEMETRY_DISABLED outside
                  src/telemetry. Simulation logic must behave identically
                  whether telemetry is compiled in or not; only the telemetry
                  subsystem itself may test the flag.
  concurrency  -- raw threading primitives (std::thread, std::mutex,
                  std::atomic, <thread>/<mutex>/<atomic> includes, ...) outside
                  src/sim/parallel_engine.*. The parallel engine is the single
                  place where threads exist; everywhere else determinism rests
                  on single-threaded shard execution, and an ad-hoc lock or
                  atomic would hide a cross-shard ordering dependency the
                  engine cannot see.

Suppress a finding with `// mind-lint: allow(<rule>)` on the offending line
or the line above it, where <rule> is one of: wall-clock, libc-rand,
unordered-emit, telemetry-divergence, concurrency.

Exit status: 0 when clean, 1 with one "file:line: [rule] message" per finding.
"""

import argparse
import os
import re
import sys

LINT_DIRS = ["src/sim", "src/overlay", "src/mind", "src/space", "src/storage",
             "src/frontend"]
TELEMETRY_EXEMPT = "src/telemetry"
# The one engine boundary allowed to hold threading primitives (matches
# parallel_engine.h and parallel_engine.cc).
CONCURRENCY_EXEMPT = "src/sim/parallel_engine"

TOKEN_RULES = [
    ("wall-clock", re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "wall-clock reads are forbidden; use EventQueue::now() virtual time"),
    ("wall-clock", re.compile(r"\b(gettimeofday|clock_gettime)\s*\("),
     "wall-clock reads are forbidden; use EventQueue::now() virtual time"),
    ("wall-clock", re.compile(r"(\b|::)time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "libc time() is forbidden; use EventQueue::now() virtual time"),
    ("libc-rand", re.compile(r"\b(rand|srand)\s*\(\s*(\)|\w)"),
     "libc randomness is forbidden; use the seeded mind::Rng"),
    ("libc-rand", re.compile(r"\brandom_device\b"),
     "std::random_device is unseedable; use the seeded mind::Rng"),
]

# Applied everywhere in LINT_DIRS except CONCURRENCY_EXEMPT files.
CONCURRENCY_RULES = [
    ("concurrency",
     re.compile(r"#\s*include\s*<(thread|mutex|shared_mutex|atomic|"
                r"condition_variable|future|semaphore|barrier|latch|"
                r"stop_token)>"),
     "threading headers are confined to src/sim/parallel_engine.*; "
     "simulation code runs single-threaded within its shard"),
    ("concurrency",
     re.compile(r"std::(jthread|thread|mutex|shared_mutex|recursive_mutex|"
                r"timed_mutex|recursive_timed_mutex|condition_variable\w*|"
                r"atomic\w*|future|shared_future|promise|async|"
                r"counting_semaphore|binary_semaphore|barrier|latch|"
                r"lock_guard|unique_lock|scoped_lock|shared_lock|call_once|"
                r"once_flag|memory_order\w*|this_thread)\b"),
     "threading primitives are confined to src/sim/parallel_engine.*; "
     "an ad-hoc lock or atomic would hide a cross-shard ordering "
     "dependency the engine cannot see"),
]

UNORDERED_MEMBER = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*(\w+)\s*[;{=]")
EMIT_CALL = re.compile(
    r"\b(Send|SendRaw|SendDirect|Route|Broadcast|Schedule|ScheduleAt)\s*\(")
ALLOW = re.compile(r"//\s*mind-lint:\s*allow\((\w[\w-]*)\)")


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments (keeps the line length
    stable so column-free reporting still points at the right line)."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            out.append(" ")
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        out.append(c)
        i += 1
    return "".join(out)


def allowed(lines, idx, rule):
    """True when line idx (0-based) or the line above carries an allow()."""
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            m = ALLOW.search(lines[j])
            if m and m.group(1) == rule:
                return True
    return False


def find_loop_body(code_lines, start_idx):
    """Returns (first, last) line indices of the block opened by the range-for
    at start_idx, by brace counting; (start, start) for brace-less bodies."""
    depth = 0
    opened = False
    for i in range(start_idx, len(code_lines)):
        for c in code_lines[i]:
            if c == "{":
                depth += 1
                opened = True
            elif c == "}":
                depth -= 1
                if opened and depth == 0:
                    return (start_idx, i)
        if not opened and code_lines[i].rstrip().endswith(";") and i > start_idx:
            return (start_idx, i)  # single-statement body
    return (start_idx, len(code_lines) - 1)


def lint_file(path, relpath, findings):
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    code = [strip_comments_and_strings(ln) for ln in raw]

    relpath_norm = relpath.replace(os.sep, "/")
    rules = list(TOKEN_RULES)
    if CONCURRENCY_EXEMPT not in relpath_norm:
        rules += CONCURRENCY_RULES
    for idx, line in enumerate(code):
        for rule, rx, msg in rules:
            if rx.search(line) and not allowed(raw, idx, rule):
                findings.append(f"{relpath}:{idx + 1}: [{rule}] {msg}")
        if TELEMETRY_EXEMPT not in relpath.replace(os.sep, "/"):
            if ("MIND_TELEMETRY_DISABLED" in line
                    and not allowed(raw, idx, "telemetry-divergence")):
                findings.append(
                    f"{relpath}:{idx + 1}: [telemetry-divergence] simulation "
                    "code may not branch on the telemetry build flag; only "
                    "src/telemetry may test MIND_TELEMETRY_DISABLED")

    # Pass 2: unordered members iterated with emission in the loop body.
    members = set()
    for line in code:
        m = UNORDERED_MEMBER.search(line)
        if m:
            members.add(m.group(1))
    if not members:
        return
    loop_rx = re.compile(
        r"for\s*\(.*:\s*(?:\w+(?:\.|->))?(" + "|".join(re.escape(m) for m in members) + r")\s*\)")
    for idx, line in enumerate(code):
        m = loop_rx.search(line)
        if not m:
            continue
        if allowed(raw, idx, "unordered-emit"):
            continue
        first, last = find_loop_body(code, idx)
        for j in range(first, last + 1):
            call = EMIT_CALL.search(code[j])
            if call:
                findings.append(
                    f"{relpath}:{idx + 1}: [unordered-emit] iteration over "
                    f"unordered member '{m.group(1)}' calls {call.group(1)}() "
                    f"at line {j + 1}; hash order leaks into message/event "
                    "order -- iterate SortedKeys() (util/ordered.h) instead")
                break


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()

    findings = []
    checked = 0
    for d in LINT_DIRS:
        base = os.path.join(args.root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.join(dirpath, name)
                lint_file(path, os.path.relpath(path, args.root), findings)
                checked += 1

    if findings:
        for f in findings:
            print(f)
        print(f"mind_lint: {len(findings)} finding(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"mind_lint: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
