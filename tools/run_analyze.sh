#!/usr/bin/env bash
# Entry point for the full static contract suite:
#   1. tools/mind_lint.py      -- fast regex pre-pass (zero dependencies)
#   2. tools/analyze           -- semantic contract analyzer (libclang when
#                                 available, builtin declaration parser
#                                 otherwise -- a loud warning says which)
#
# Usage: tools/run_analyze.sh [analyzer args...]
#   e.g. tools/run_analyze.sh --frontend=builtin src/sim
#
# Exit status: non-zero when either pass reports an unsuppressed finding.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

status=0

echo "== mind_lint (regex pre-pass) =="
python3 tools/mind_lint.py --root "$ROOT" || status=1

echo "== analyze (semantic contracts) =="
python3 -m tools.analyze.analyze "$@" || status=1

if [ "$status" -ne 0 ]; then
  echo "run_analyze: FAILED -- unsuppressed findings above" >&2
else
  echo "run_analyze: clean"
fi
exit "$status"
