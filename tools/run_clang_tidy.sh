#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every source
# file in src/, using the compile database exported by CMake.
#
# Usage: tools/run_clang_tidy.sh [build-dir]   (default: build)
# The build dir must have been configured already (compile_commands.json).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "error: clang-tidy not found on PATH (CI installs it; locally use" \
       "your distro package)" >&2
  exit 2
fi
if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  echo "error: ${BUILD}/compile_commands.json missing -- configure first:" \
       "cmake -B ${BUILD} -S ." >&2
  exit 2
fi

mapfile -t files < <(find src -name '*.cc' | sort)
echo "clang-tidy over ${#files[@]} files (build dir: ${BUILD})"
fail=0
for f in "${files[@]}"; do
  if ! clang-tidy -p "${BUILD}" --quiet --warnings-as-errors='*' "$f"; then
    fail=1
  fi
done
if [[ "${fail}" -ne 0 ]]; then
  echo "clang-tidy: violations found" >&2
  exit 1
fi
echo "clang-tidy: clean"
